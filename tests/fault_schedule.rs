//! Seeded fault-schedule fuzzer for the fleet's fault model.
//!
//! PR 7 gave the async transports a deterministic fault injector
//! ([`dejavu::fleet::FaultSpec`]) and the recovery machinery to survive it:
//! delta-chain checkpoints between epoch barriers, tenant restart with
//! deterministic epoch replay, committer failover that re-assembles
//! un-committed batches from re-sent reports, and shard-loss warm re-seeds.
//! The promise mirrors the differential fuzzer's: **recovery is invisible**.
//! At `staleness = 0`, a run under *any* injected fault schedule converges
//! bit-identical to the fault-free BSP barrier — down to the shared
//! repository's eviction counts — and for `K > 0` the staleness bound and
//! liveness still hold.
//!
//! Every test here is seeded and deterministic (the shared `cases` harness
//! from `tests/common`); `DEJAVU_PROPTEST_CASES` raises the case count —
//! the nightly CI job runs the fuzzer at 32 cases, i.e. hundreds of
//! distinct fault schedules.
//!
//! Invariants pinned, per fuzzed scenario:
//!
//! * **K = 0 convergence under faults.** For ≥ 64 distinct seeded schedules
//!   (every fault kind alone, all kinds together, and a crash/restart/loss
//!   mix — across cases and both async transports), the faulty run
//!   bit-matches the fault-free barrier: per-tenant results, the hit-rate
//!   curve, and the repository's entries/anchors/stats/shard stats
//!   (evictions included).
//! * **The fault summary tells the truth.** Injection tallies are consistent
//!   with the per-kind breakdown, enabled-kind subsets only inject their
//!   kinds, and the all-kinds schedules actually fire (non-vacuous).
//! * **Staleness and liveness for K > 0.** Faulty runs never exceed the
//!   staleness bound, complete every epoch, and keep the schedule-determined
//!   fields bit-identical to the barrier.
//! * **Checkpoint profiling is invisible too.** `checkpoint_every > 0`
//!   without any fault spec records deltas and compactions but changes no
//!   result bit.
//! * **Observability stays invisible under faults.** An obs-on faulty run
//!   bit-matches the obs-off faulty run, and the enabled recorder actually
//!   sees the recovery counters.

use dejavu::fleet::{
    FaultKind, FaultSpec, FleetConfig, FleetEngine, FleetReport, Scenario, ScenarioBuilder,
    SharedRepoConfig, TransportConfig,
};
use dejavu::obs::Recorder;
use dejavu::simcore::SimDuration;

mod common;
use common::{assert_reports_bit_match, cases, fuzz_repo, fuzz_scenario, D_SEED};

/// Runs `scenario` with fault injection (and the delta-checkpoint cadence
/// that recovery replays from) over `transport`.
fn run_faulty(
    scenario: &Scenario,
    repo: &SharedRepoConfig,
    transport: TransportConfig,
    faults: Option<FaultSpec>,
    checkpoint_every: usize,
    recorder: Option<Recorder>,
) -> FleetReport {
    FleetEngine::new(
        scenario.clone(),
        FleetConfig {
            repo: repo.clone(),
            transport,
            faults,
            checkpoint_every,
            recorder: recorder.unwrap_or_default(),
            ..Default::default()
        },
    )
    .run()
}

/// The schedule battery for one fuzz case: all kinds together, each kind
/// alone, and a state-loss mix — eight distinct seeded schedules per case.
fn fault_specs(case: u64) -> Vec<FaultSpec> {
    let seed = D_SEED ^ (case << 16);
    let mut specs = vec![FaultSpec::all(seed)];
    for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
        specs.push(FaultSpec::with_kinds(seed ^ (i as u64 + 1), &[kind]));
    }
    specs.push(FaultSpec::with_kinds(
        seed ^ 0xFF,
        &[
            FaultKind::TenantCrash,
            FaultKind::CommitterRestart,
            FaultKind::ShardLoss,
        ],
    ));
    specs
}

/// The two async transports every schedule is driven through.
fn async_transports() -> [TransportConfig; 2] {
    [
        TransportConfig::BoundedStaleness { staleness: 0 },
        TransportConfig::WorkStealing {
            threads: 2,
            staleness: 0,
            adaptive: false,
        },
    ]
}

/// Checks the summary's internal consistency: the injected total covers the
/// per-kind tallies, and disabled kinds never fire.
fn assert_summary_consistent(report: &FleetReport, spec: FaultSpec, label: &str) {
    let f = report
        .faults
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: fault run lost its summary"));
    assert_eq!(f.spec, spec.render(), "{label}: spec round-trip");
    let by_kind = [
        (FaultKind::TenantCrash, f.tenants_crashed),
        (FaultKind::CommitterRestart, f.committer_restarts),
        (FaultKind::DropReport, f.reports_dropped),
        (FaultKind::DupReport, f.reports_duplicated),
        (FaultKind::ReorderReport, f.reports_reordered),
        (FaultKind::ShardLoss, f.shard_losses),
    ];
    let mut total = 0;
    for (kind, count) in by_kind {
        assert!(
            spec.enables(kind) || count == 0,
            "{label}: disabled kind {kind:?} fired {count} times"
        );
        total += count;
    }
    assert_eq!(f.injected, total, "{label}: injected total vs breakdown");
    // Replay only ever happens in service of a crash recovery. (The reverse
    // need not hold: a tenant crashing at the first epoch of its tenancy
    // window has nothing to replay.)
    assert!(
        f.replayed_epochs == 0 || f.tenants_crashed > 0,
        "{label}: replay without a crash"
    );
    assert!(
        f.checkpoints > 0,
        "{label}: fault run recorded no delta checkpoints"
    );
}

/// Every `K = 0` run under every injected fault schedule converges
/// bit-identical to the fault-free BSP barrier — the tentpole invariant.
/// 4 cases × 8 schedules × 2 transports = 64 distinct schedule runs at the
/// default case count.
#[test]
fn k0_fault_schedules_converge_bit_identical_to_fault_free_bsp() {
    cases(4, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let bsp = FleetEngine::new(
            scenario.clone(),
            FleetConfig {
                repo: repo.clone(),
                ..Default::default()
            },
        )
        .run();
        // Rotate the checkpoint cadence so compaction (> 0) and the
        // record-only floor cadence (0 disables compaction, not recording)
        // both keep getting exercised.
        let checkpoint_every = [0, 2, 5, 8][case as usize % 4];
        let mut injected_all_kinds = 0;
        for (s, spec) in fault_specs(case).into_iter().enumerate() {
            for transport in async_transports() {
                let label = format!("case {case} spec {s} ({}) {transport:?}", spec.render());
                let faulty = run_faulty(
                    &scenario,
                    &repo,
                    transport,
                    Some(spec),
                    checkpoint_every,
                    None,
                );
                assert_reports_bit_match(&bsp, &faulty, &label);
                assert_summary_consistent(&faulty, spec, &label);
                if s == 0 {
                    injected_all_kinds += faulty.faults.as_ref().unwrap().injected;
                }
            }
        }
        assert!(
            injected_all_kinds > 0,
            "case {case}: the all-kinds schedules never injected anything — vacuous"
        );
    });
}

/// `checkpoint_every > 0` with no fault spec is pure profiling: deltas and
/// compactions are recorded, the summary says so, and not a single result
/// bit moves.
#[test]
fn checkpointing_without_faults_is_invisible_and_summarized() {
    cases(2, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let bsp = FleetEngine::new(
            scenario.clone(),
            FleetConfig {
                repo: repo.clone(),
                ..Default::default()
            },
        )
        .run();
        for transport in async_transports() {
            let label = format!("ckpt case {case} {transport:?}");
            let report = run_faulty(&scenario, &repo, transport, None, 3, None);
            assert_reports_bit_match(&bsp, &report, &label);
            let f = report
                .faults
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no summary"));
            assert_eq!(f.injected, 0, "{label}");
            assert_eq!(f.spec, "", "{label}");
            assert!(f.checkpoints > 0, "{label}: nothing recorded");
            assert!(f.compactions > 0, "{label}: nothing compacted");
        }
    });
}

/// The dynamic compaction floor: on a long run whose tenancy windows all
/// *close*, the delta chain compacts past each crash-scheduled window as its
/// window ends instead of pinning the whole run at the earliest one — the
/// chain's peak length is bounded by the window span, not the horizon.
#[test]
fn long_churn_runs_keep_delta_chains_bounded() {
    let days = 5;
    let tenants = 12;
    // Staggered 24-epoch tenancy windows across a 120-epoch horizon: every
    // window closes long before the run does.
    let mut builder = ScenarioBuilder::new("floor-churn", D_SEED, days).diurnal_fleet(tenants);
    for t in 0..tenants {
        builder = builder
            .arrive_at(t, SimDuration::from_hours(6.0 * t as f64))
            .depart_at(t, SimDuration::from_hours(6.0 * t as f64 + 24.0));
    }
    let scenario = builder.build();
    let repo = SharedRepoConfig::default();
    let bsp = FleetEngine::new(
        scenario.clone(),
        FleetConfig {
            repo: repo.clone(),
            ..Default::default()
        },
    )
    .run();
    let spec = FaultSpec::with_kinds(D_SEED ^ 0xC0FFEE, &[FaultKind::TenantCrash]);
    for transport in async_transports() {
        let label = format!("bounded chain {transport:?}");
        let faulty = run_faulty(&scenario, &repo, transport, Some(spec), 2, None);
        assert_reports_bit_match(&bsp, &faulty, &label);
        let f = faulty.faults.as_ref().expect("fault summary");
        assert!(
            f.tenants_crashed > 0,
            "{label}: no crash ever scheduled — the floor was never exercised"
        );
        let horizon = faulty.epochs;
        assert!(horizon >= 90, "long run expected, got {horizon} epochs");
        // A 24-epoch window plus compaction-cadence slack. A static floor
        // pinned at the earliest crash window would grow the chain toward
        // the full horizon instead.
        assert!(
            (f.chain_peak as usize) < horizon / 2,
            "{label}: chain peak {} of a {horizon}-epoch run — the floor never advanced",
            f.chain_peak
        );
    }
}

/// For `K > 0`, faulty runs still honor the staleness bound, still finish
/// every epoch (liveness — held-back reports are force-released rather than
/// deadlocking the committer), and keep every schedule-determined field
/// bit-identical to the barrier.
#[test]
fn k_positive_fault_runs_hold_staleness_and_liveness_bounds() {
    cases(3, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let k = 1 + rng.uniform_usize(3);
        let bsp = FleetEngine::new(
            scenario.clone(),
            FleetConfig {
                repo: repo.clone(),
                ..Default::default()
            },
        )
        .run();
        let spec = FaultSpec::all(D_SEED ^ (case << 24));
        for transport in [
            TransportConfig::BoundedStaleness { staleness: k },
            TransportConfig::WorkStealing {
                threads: 3,
                staleness: k,
                adaptive: false,
            },
        ] {
            let label = format!("case {case} k={k} {transport:?}");
            let report = run_faulty(&scenario, &repo, transport, Some(spec), 4, None);
            assert!(
                report.transport.view_staleness.max() <= k,
                "{label}: view staleness {} exceeded the bound",
                report.transport.view_staleness.max()
            );
            assert!(
                report.transport.reuse_staleness.max() <= k,
                "{label}: reuse staleness {} exceeded the bound",
                report.transport.reuse_staleness.max()
            );
            // Liveness + schedule determinism: the faulty run completed the
            // whole horizon with every tenant stepping its full window.
            assert_eq!(report.epochs, bsp.epochs, "{label}: horizon");
            assert_eq!(
                report.hit_rate_curve.len(),
                bsp.epochs,
                "{label}: curve length"
            );
            for (x, y) in bsp.tenants.iter().zip(&report.tenants) {
                assert_eq!(x.joined_epoch, y.joined_epoch, "{label} {}", x.name);
                assert_eq!(x.active_epochs, y.active_epochs, "{label} {}", x.name);
                assert_eq!(y.failed_epoch, None, "{label} {}", x.name);
            }
            assert_summary_consistent(&report, spec, &label);
        }
    });
}

/// The flight recorder stays invisible under fault injection: an obs-on
/// faulty run bit-matches the obs-off faulty run of the same schedule, and
/// the enabled recorder actually observes the recovery counters.
#[test]
fn obs_recording_is_invisible_to_fault_runs() {
    cases(2, |rng, case| {
        let scenario = fuzz_scenario(rng, case);
        let repo = fuzz_repo(rng);
        let spec = FaultSpec::all(D_SEED ^ (case << 32));
        for transport in async_transports() {
            let label = format!("obs fault case {case} {transport:?}");
            let off = run_faulty(&scenario, &repo, transport, Some(spec), 3, None);
            let recorder = Recorder::enabled();
            let on = run_faulty(
                &scenario,
                &repo,
                transport,
                Some(spec),
                3,
                Some(recorder.clone()),
            );
            assert_reports_bit_match(&off, &on, &label);
            assert_eq!(off.faults, on.faults, "{label}: summaries diverged");
            let injected = off.faults.as_ref().expect("summary").injected;
            if injected > 0 {
                let rendered = recorder.report().expect("enabled recorder").render();
                assert!(
                    rendered.contains("faults_injected"),
                    "{label}: recorder missed the fault counters"
                );
                assert!(
                    rendered.contains("checkpoints"),
                    "{label}: recorder missed the checkpoint counter"
                );
            }
        }
    });
}
