//! Spike and anomaly injection on top of existing traces.
//!
//! Used to create "unforeseen workload" scenarios (§3.7: large and unseen
//! workload volumes) beyond the built-in day-4 surge of the HotMail-style
//! trace, and to stress the re-clustering path.

use crate::trace::LoadTrace;
use dejavu_simcore::SimRng;

/// Returns a copy of `trace` with the samples in `[start_index, start_index + len)`
/// replaced by `level` (clamped to the valid range).
///
/// # Panics
///
/// Panics if the range extends beyond the trace.
pub fn with_spike(trace: &LoadTrace, start_index: usize, len: usize, level: f64) -> LoadTrace {
    assert!(
        start_index + len <= trace.len(),
        "spike range exceeds trace length"
    );
    let mut levels = trace.levels().to_vec();
    for l in levels.iter_mut().skip(start_index).take(len) {
        *l = level.clamp(0.0, 1.5);
    }
    LoadTrace::new(format!("{}+spike", trace.name()), trace.step(), levels)
        .expect("spiked levels remain valid")
}

/// Returns a copy of `trace` with `count` randomly placed single-sample flash
/// crowds, each multiplying the original level by `factor` (clamped).
///
/// # Panics
///
/// Panics if `count` is larger than the trace.
pub fn with_flash_crowds(trace: &LoadTrace, count: usize, factor: f64, seed: u64) -> LoadTrace {
    assert!(count <= trace.len(), "more flash crowds than samples");
    let mut rng = SimRng::seed_from_u64(seed);
    let mut levels = trace.levels().to_vec();
    let mut indices: Vec<usize> = (0..levels.len()).collect();
    rng.shuffle(&mut indices);
    for &i in indices.iter().take(count) {
        levels[i] = (levels[i] * factor).clamp(0.0, 1.5);
    }
    LoadTrace::new(format!("{}+flash", trace.name()), trace.step(), levels)
        .expect("flash-crowd levels remain valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotmail::hotmail_week;

    #[test]
    fn spike_replaces_exactly_the_range() {
        let t = hotmail_week(1);
        let spiked = with_spike(&t, 30, 3, 1.4);
        for i in 0..t.len() {
            if (30..33).contains(&i) {
                assert!((spiked.levels()[i] - 1.4).abs() < 1e-12);
            } else {
                assert_eq!(spiked.levels()[i], t.levels()[i]);
            }
        }
        assert!(spiked.name().contains("spike"));
    }

    #[test]
    fn spike_level_is_clamped() {
        let t = hotmail_week(2);
        let spiked = with_spike(&t, 0, 1, 99.0);
        assert!(spiked.levels()[0] <= 1.5);
    }

    #[test]
    #[should_panic]
    fn spike_out_of_range_panics() {
        let t = hotmail_week(3);
        let _ = with_spike(&t, t.len() - 1, 5, 1.0);
    }

    #[test]
    fn flash_crowds_change_exactly_count_samples() {
        let t = hotmail_week(4);
        let crowded = with_flash_crowds(&t, 10, 1.3, 99);
        let changed = t
            .levels()
            .iter()
            .zip(crowded.levels())
            .filter(|(a, b)| (*a - *b).abs() > 1e-12)
            .count();
        assert!((5..=10).contains(&changed), "changed {changed}");
    }

    #[test]
    fn flash_crowds_deterministic_per_seed() {
        let t = hotmail_week(5);
        assert_eq!(
            with_flash_crowds(&t, 5, 1.2, 1).levels(),
            with_flash_crowds(&t, 5, 1.2, 1).levels()
        );
    }
}
