//! Model evaluation utilities: confusion matrices and k-fold cross-validation.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// A confusion matrix for a multi-class classifier.
///
/// # Example
///
/// ```
/// use dejavu_ml::eval::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(1, 1);
/// cm.record(1, 0); // actual 1 predicted 0
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// counts[actual][predicted]
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; num_classes]; num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Records one (actual, predicted) observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.num_classes() && predicted < self.num_classes());
        self.counts[actual][predicted] += 1;
    }

    /// Count for a specific (actual, predicted) pair.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (0.0 if no observations).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.num_classes()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c` (0.0 if the class never occurred).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: u64 = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / actual as f64
        }
    }

    /// Precision of class `c` (0.0 if the class was never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.num_classes()).map(|a| self.counts[a][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / predicted as f64
        }
    }
}

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Accuracy per fold.
    pub fold_accuracies: Vec<f64>,
    /// Pooled confusion matrix across folds.
    pub confusion: ConfusionMatrix,
}

impl CrossValidation {
    /// Mean accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            0.0
        } else {
            self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
        }
    }

    /// Runs `k`-fold cross-validation, training with `train` on each fold.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] if `k < 2` or the dataset is smaller
    /// than `k`, [`MlError::MissingLabels`] if unlabeled, and propagates
    /// training errors from `train`.
    pub fn run<C, F>(data: &Dataset, k: usize, mut train: F) -> Result<CrossValidation, MlError>
    where
        C: Classifier,
        F: FnMut(&Dataset) -> Result<C, MlError>,
    {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if k < 2 || k > data.len() {
            return Err(MlError::InvalidConfig(format!(
                "k-fold requires 2 <= k <= n ({} instances, k = {k})",
                data.len()
            )));
        }
        let labels = data.labels()?;
        let num_classes = data.num_classes();
        let mut confusion = ConfusionMatrix::new(num_classes.max(1));
        let mut fold_accuracies = Vec::with_capacity(k);
        for fold in 0..k {
            let mut train_set = Dataset::new(data.attribute_names().to_vec());
            let mut test_idx = Vec::new();
            for (i, inst) in data.instances().iter().enumerate() {
                if i % k == fold {
                    test_idx.push(i);
                } else {
                    train_set
                        .try_push(inst.clone())
                        .expect("schema matches by construction");
                }
            }
            if train_set.is_empty() || test_idx.is_empty() {
                continue;
            }
            let model = train(&train_set)?;
            let mut correct = 0usize;
            for &i in &test_idx {
                let predicted = model.predict(&data.instances()[i].features);
                let actual = labels[i];
                if predicted < num_classes {
                    confusion.record(actual, predicted);
                }
                if predicted == actual {
                    correct += 1;
                }
            }
            fold_accuracies.push(correct as f64 / test_idx.len() as f64);
        }
        Ok(CrossValidation {
            fold_accuracies,
            confusion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtree::{DecisionTree, DecisionTreeConfig};
    use dejavu_simcore::SimRng;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for i in 0..120 {
            let class = i % 3;
            d.push_labeled(
                vec![
                    rng.normal(class as f64 * 20.0, 1.0),
                    rng.normal(class as f64 * -20.0, 1.0),
                ],
                class,
            );
        }
        d
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut cm = ConfusionMatrix::new(3);
        for _ in 0..8 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 11);
        assert!((cm.accuracy() - 10.0 / 11.0).abs() < 1e-12);
        assert!((cm.recall(0) - 8.0 / 9.0).abs() < 1e-12);
        assert!((cm.precision(1) - 0.5).abs() < 1e-12);
        assert_eq!(cm.count(0, 1), 1);
    }

    #[test]
    fn cross_validation_on_separable_data_is_accurate() {
        let d = dataset(1);
        let cv = CrossValidation::run(&d, 5, |train| {
            DecisionTree::fit(train, &DecisionTreeConfig::default())
        })
        .unwrap();
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(cv.mean_accuracy() > 0.95, "accuracy {}", cv.mean_accuracy());
        assert_eq!(cv.confusion.total() as usize, d.len());
    }

    #[test]
    fn cross_validation_rejects_bad_k() {
        let d = dataset(2);
        assert!(CrossValidation::run(&d, 1, |t| DecisionTree::fit(
            t,
            &DecisionTreeConfig::default()
        ))
        .is_err());
        assert!(CrossValidation::run(&d, d.len() + 1, |t| DecisionTree::fit(
            t,
            &DecisionTreeConfig::default()
        ))
        .is_err());
    }

    #[test]
    #[should_panic]
    fn confusion_matrix_bounds_checked() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(0), 0.0);
        assert_eq!(cm.precision(0), 0.0);
    }
}
