//! Correlation-based feature-subset selection (CFS) with greedy stepwise
//! forward search — the role WEKA's `CfsSubsetEval` + `GreedyStepwise` play in
//! choosing the metrics that form the DejaVu workload signature (§3.3,
//! Table 1 of the paper).
//!
//! CFS scores a subset `S` of features by
//! `merit(S) = k * r_cf / sqrt(k + k*(k-1) * r_ff)` where `r_cf` is the mean
//! feature–class correlation and `r_ff` the mean feature–feature correlation:
//! subsets of features that are individually predictive but mutually
//! non-redundant score highest.

use crate::dataset::Dataset;
use crate::error::MlError;
use serde::{Deserialize, Serialize};

/// The outcome of a feature-selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSelection {
    /// Indices of the selected attributes, in selection order.
    pub selected: Vec<usize>,
    /// Names of the selected attributes, in selection order.
    pub selected_names: Vec<String>,
    /// CFS merit of the final subset.
    pub merit: f64,
    /// Merit trace: merit after each greedy step.
    pub merit_trace: Vec<f64>,
}

impl FeatureSelection {
    /// Projects a dataset onto the selected attributes.
    pub fn project(&self, data: &Dataset) -> Dataset {
        data.project(&self.selected)
    }

    /// Projects a single feature vector onto the selected attributes.
    ///
    /// # Panics
    ///
    /// Panics if any selected index is out of range for `features`.
    pub fn project_vector(&self, features: &[f64]) -> Vec<f64> {
        self.selected.iter().map(|&i| features[i]).collect()
    }
}

/// Correlation-based feature selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfsSelector {
    /// Maximum number of features to select (the paper's signatures are short,
    /// bounded by the number of usable HPC registers).
    pub max_features: usize,
    /// Stop when adding the best remaining feature improves merit by less than this.
    pub min_improvement: f64,
    /// Keep selecting (even without merit improvement) until at least this many
    /// features are chosen; highly correlated counter sets would otherwise
    /// collapse to a single-metric signature that is fragile to trial noise.
    pub min_features: usize,
    /// Candidates whose absolute feature–class correlation falls below this
    /// floor are never selected: with a few dozen profiled workloads a pure
    /// noise counter can show a spurious correlation of ~0.2–0.3, and letting
    /// it into the signature would poison clustering and novelty detection.
    pub min_class_correlation: f64,
}

impl Default for CfsSelector {
    fn default() -> Self {
        CfsSelector {
            max_features: 8,
            min_improvement: 1e-4,
            min_features: 4,
            min_class_correlation: 0.5,
        }
    }
}

/// Correlation ratio (eta) between a numeric feature and a nominal class
/// label: sqrt(between-class variance / total variance), in [0, 1]. Unlike
/// Pearson correlation against integer-coded class ids, it is invariant to
/// how the class labels happen to be numbered.
fn correlation_ratio(values: &[f64], labels: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let grand_mean = values.iter().sum::<f64>() / n;
    let num_classes = labels.iter().max().map(|m| m + 1).unwrap_or(0);
    let mut sums = vec![0.0; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (&v, &l) in values.iter().zip(labels) {
        sums[l] += v;
        counts[l] += 1;
    }
    let ss_between: f64 = (0..num_classes)
        .filter(|&c| counts[c] > 0)
        .map(|c| {
            let mean = sums[c] / counts[c] as f64;
            counts[c] as f64 * (mean - grand_mean).powi(2)
        })
        .sum();
    let ss_total: f64 = values.iter().map(|v| (v - grand_mean).powi(2)).sum();
    if ss_total <= 0.0 {
        0.0
    } else {
        (ss_between / ss_total).sqrt().clamp(0.0, 1.0)
    }
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        (cov / (va.sqrt() * vb.sqrt())).abs()
    }
}

impl CfsSelector {
    /// Creates a selector bounded to `max_features`.
    pub fn new(max_features: usize) -> Self {
        CfsSelector {
            max_features,
            ..Default::default()
        }
    }

    /// CFS merit of a feature subset.
    fn merit(&self, feat_class: &[f64], feat_feat: &[Vec<f64>], subset: &[usize]) -> f64 {
        let k = subset.len() as f64;
        if subset.is_empty() {
            return 0.0;
        }
        let r_cf = subset.iter().map(|&i| feat_class[i]).sum::<f64>() / k;
        let mut r_ff = 0.0;
        let mut pairs = 0.0;
        for (ai, &a) in subset.iter().enumerate() {
            for &b in subset.iter().skip(ai + 1) {
                r_ff += feat_feat[a][b];
                pairs += 1.0;
            }
        }
        let r_ff = if pairs > 0.0 { r_ff / pairs } else { 0.0 };
        let denom = (k + k * (k - 1.0) * r_ff).sqrt();
        if denom <= 0.0 {
            0.0
        } else {
            k * r_cf / denom
        }
    }

    /// Runs greedy-stepwise forward selection on a fully labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] if `data` is empty,
    /// [`MlError::MissingLabels`] if it is not fully labeled and
    /// [`MlError::InvalidConfig`] if `max_features` is zero.
    pub fn select(&self, data: &Dataset) -> Result<FeatureSelection, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.max_features == 0 {
            return Err(MlError::InvalidConfig("max_features must be > 0".into()));
        }
        let labels = data.labels()?;
        let n_attrs = data.num_attributes();
        let columns: Vec<Vec<f64>> = (0..n_attrs).map(|a| data.column(a)).collect();
        let feat_class: Vec<f64> = columns
            .iter()
            .map(|c| correlation_ratio(c, &labels))
            .collect();
        let mut feat_feat = vec![vec![0.0; n_attrs]; n_attrs];
        for a in 0..n_attrs {
            for b in (a + 1)..n_attrs {
                let r = pearson(&columns[a], &columns[b]);
                feat_feat[a][b] = r;
                feat_feat[b][a] = r;
            }
        }
        // If the correlation floor would filter out every attribute (tiny or
        // degenerate training sets), relax it so at least one metric survives.
        let strongest = feat_class.iter().copied().fold(0.0f64, f64::max);
        let floor = if strongest >= self.min_class_correlation {
            self.min_class_correlation
        } else {
            strongest
        };
        let mut selected: Vec<usize> = Vec::new();
        let mut merit_trace = Vec::new();
        let mut current_merit = 0.0;
        while selected.len() < self.max_features.min(n_attrs) {
            let mut best: Option<(usize, f64)> = None;
            for cand in 0..n_attrs {
                if selected.contains(&cand) || feat_class[cand] < floor {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(cand);
                let m = self.merit(&feat_class, &feat_feat, &trial);
                if best.map(|(_, bm)| m > bm).unwrap_or(true) {
                    best = Some((cand, m));
                }
            }
            let Some((cand, m)) = best else { break };
            if m < current_merit + self.min_improvement
                && selected.len() >= self.min_features.max(1)
            {
                break;
            }
            selected.push(cand);
            current_merit = m;
            merit_trace.push(m);
        }
        let selected_names = selected
            .iter()
            .map(|&i| data.attribute_names()[i].clone())
            .collect();
        Ok(FeatureSelection {
            selected,
            selected_names,
            merit: current_merit,
            merit_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimRng;

    /// Dataset where attribute 0 is perfectly predictive, attribute 1 is a
    /// noisy copy of attribute 0 (redundant), attribute 2 is pure noise and
    /// attribute 3 carries complementary information.
    fn structured(seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec![
            "predictive".into(),
            "redundant".into(),
            "noise".into(),
            "complementary".into(),
        ]);
        for i in 0..200 {
            let class = i % 4;
            let main = class as f64 * 10.0 + rng.normal(0.0, 0.5);
            let redundant = main + rng.normal(0.0, 0.5);
            let noise = rng.normal(0.0, 10.0);
            let comp = if class % 2 == 0 { 0.0 } else { 50.0 } + rng.normal(0.0, 0.5);
            d.push_labeled(vec![main, redundant, noise, comp], class);
        }
        d
    }

    #[test]
    fn selects_predictive_over_noise() {
        let d = structured(1);
        let sel = CfsSelector::default().select(&d).unwrap();
        assert!(
            sel.selected.contains(&0) || sel.selected.contains(&1),
            "a predictive attr must be selected (got {:?})",
            sel.selected
        );
        assert!(
            sel.selected.contains(&3),
            "the complementary attr must be selected"
        );
        assert!(
            !sel.selected.contains(&2),
            "noise attr must not be selected"
        );
        assert!(sel.merit > 0.0);
    }

    #[test]
    fn redundant_feature_is_deprioritized() {
        let d = structured(2);
        let sel = CfsSelector::default().select(&d).unwrap();
        // The redundant copy should not appear before the complementary attr.
        let pos = |attr: usize| sel.selected.iter().position(|&x| x == attr);
        if let (Some(red), Some(comp)) = (pos(1), pos(3)) {
            assert!(
                comp < red,
                "complementary should be picked before redundant"
            );
        }
    }

    #[test]
    fn respects_max_features() {
        let d = structured(3);
        let sel = CfsSelector::new(1).select(&d).unwrap();
        assert_eq!(sel.selected.len(), 1);
        assert_eq!(sel.selected_names.len(), 1);
    }

    #[test]
    fn projection_matches_selection() {
        let d = structured(4);
        let sel = CfsSelector::new(2).select(&d).unwrap();
        let proj = sel.project(&d);
        assert_eq!(proj.num_attributes(), sel.selected.len());
        let v = sel.project_vector(&d.instances()[0].features);
        assert_eq!(v.len(), sel.selected.len());
        assert_eq!(v, proj.instances()[0].features);
    }

    #[test]
    fn merit_trace_is_recorded_per_step_and_monotone_past_the_minimum() {
        let d = structured(5);
        let sel = CfsSelector::default().select(&d).unwrap();
        assert_eq!(sel.merit_trace.len(), sel.selected.len());
        assert!(sel.merit_trace.iter().all(|&m| m > 0.0));
        // Once the minimum signature size is reached, greedy forward selection
        // only keeps adding features while the merit does not decrease.
        let min = CfsSelector::default().min_features;
        for w in sel.merit_trace[min.saturating_sub(1).min(sel.merit_trace.len())..].windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "merit must not decrease past the minimum size"
            );
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let empty = Dataset::new(vec!["x".into()]);
        assert!(matches!(
            CfsSelector::default().select(&empty),
            Err(MlError::EmptyDataset)
        ));
        let mut unl = Dataset::new(vec!["x".into()]);
        unl.push_unlabeled(vec![1.0]);
        assert!(matches!(
            CfsSelector::default().select(&unl),
            Err(MlError::MissingLabels)
        ));
        let d = structured(6);
        assert!(matches!(
            CfsSelector {
                max_features: 0,
                ..Default::default()
            }
            .select(&d),
            Err(MlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!(
            (pearson(&a, &c) - 1.0).abs() < 1e-12,
            "correlation is absolute"
        );
        let constant = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &constant), 0.0);
    }
}
