//! The `fleet` experiment: runs the standard mixed fleet twice — once with the
//! shared signature repository, once with per-tenant isolated repositories —
//! and reports what sharing buys: a higher repository hit rate, fewer
//! cold-start tuning runs, and the fleet-wide cost picture against the
//! `FixedMax` and `RightScale` baselines.
//!
//! Persistence, elastic tenancy and the commit transport ride on the same
//! command:
//!
//! ```text
//! cargo run -p dejavu-experiments --release -- fleet --tenants 200
//! # seed a snapshot, then warm-start a newcomer fleet from it:
//! cargo run -p dejavu-experiments --release -- fleet --tenants 40 --snapshot-out fleet.snap
//! cargo run -p dejavu-experiments --release -- fleet --tenants 8 --snapshot-in fleet.snap
//! # elastic tenancy: staggered late joiners + mid-run departures:
//! cargo run -p dejavu-experiments --release -- fleet --tenants 40 --churn
//! # free-running tenants, views at most 2 epochs stale:
//! cargo run -p dejavu-experiments --release -- fleet --transport async --staleness 2
//! # the same consistency on a 4-thread work-stealing pool (1000+-tenant scale):
//! cargo run -p dejavu-experiments --release -- fleet --transport steal --threads 4 --staleness 1
//! # drop never-hit entries when persisting:
//! cargo run -p dejavu-experiments --release -- fleet --snapshot-out fleet.snap --snapshot-compact
//! # flight recorder: lookup latency quantiles, frontier lag, park/steal rates:
//! cargo run -p dejavu-experiments --release -- fleet --obs --obs-out fleet-obs.json
//! # drive the shared fleet against a dejavu-serve daemon over the wire:
//! cargo run -p dejavu-serve --release -- --listen 127.0.0.1:7117 &
//! cargo run -p dejavu-experiments --release -- fleet --repo remote:127.0.0.1:7117
//! ```
//!
//! With `--snapshot-in` the report carries the newcomer-convergence numbers
//! (mean epochs to the first `FleetReuse`) that show a warm-started tenant
//! skipping the learning phase the DejaVu paper sets out to amortize. With
//! `--transport async` or `--transport steal` the report additionally
//! carries the observed-staleness telemetry of the asynchronous transports.
//! The `--transport` name goes through the typed
//! [`TransportConfig::parse`], so an unknown backend is a clear error
//! listing the valid choices rather than a panic.

use crate::report::{pct, Report};
use dejavu_fleet::{
    churn_fleet, standard_fleet, FaultSpec, FleetConfig, FleetEngine, FleetReport,
    RepositoryClient, ShardStats, SharedSignatureRepository, SharingMode, TransportConfig,
};
use dejavu_obs::{Event, ObsReport, Recorder};
use dejavu_serve::RemoteRepository;
use std::sync::Arc;

/// Options of one `fleet` experiment invocation.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Master scenario seed.
    pub seed: u64,
    /// Fleet size.
    pub tenants: usize,
    /// Days simulated per tenant.
    pub days: usize,
    /// Run the FixedMax/RightScale baselines alongside.
    pub baselines: bool,
    /// Use the churn scenario (staggered joiners, mid-run departures).
    pub churn: bool,
    /// Warm-start the shared fleet from this snapshot file.
    pub snapshot_in: Option<String>,
    /// Persist the shared repository to this snapshot file afterwards.
    pub snapshot_out: Option<String>,
    /// Drop never-hit entries when persisting the snapshot.
    pub snapshot_compact: bool,
    /// The commit transport driving both fleets (BSP barrier by default).
    pub transport: TransportConfig,
    /// Enable the fleet flight recorder on the shared fleet and append its
    /// report to the experiment output. Off by default: the disabled
    /// recorder's probes compile to null checks, and results are
    /// bit-identical either way.
    pub obs: bool,
    /// Write the flight-recorder report as canonical JSON to this file
    /// (implies nothing about `obs`; the CLI sets both).
    pub obs_out: Option<String>,
    /// Inject a deterministic fault schedule into the shared fleet
    /// (`--faults SEED` or `--faults SEED:kind,...`). Requires an async
    /// transport — the BSP barrier has no report path to fault.
    pub faults: Option<FaultSpec>,
    /// Compact the recovery delta chains every N commits per shard
    /// (`--checkpoint-every N`; 0 keeps every delta). Only meaningful with
    /// an async transport; recording itself is always on during fault runs.
    pub checkpoint_every: usize,
    /// Spill the shared fleet's delta-chain checkpoints to a durable
    /// on-disk store at this directory (`--checkpoint-dir PATH`): every
    /// commit is crash-safe before it acknowledges, and the directory
    /// replays to the final repository state. Requires an async transport
    /// and an in-process repository.
    pub checkpoint_dir: Option<String>,
    /// Drive the shared fleet against a `dejavu-serve` daemon at this TCP
    /// address instead of an in-process repository (`--repo
    /// remote[:ADDR]`). At staleness 0 the report is bit-identical to the
    /// local run; snapshot files and fault injection live with the serving
    /// process, so requesting them here is an error.
    pub repo_remote: Option<String>,
}

/// Result of the fleet comparison.
#[derive(Debug, Clone)]
pub struct FleetFigure {
    /// The fleet with the shared repository.
    pub shared: FleetReport,
    /// The same fleet with isolated per-tenant repositories.
    pub isolated: FleetReport,
    /// The shared fleet's flight-recorder report, when `--obs` ran.
    pub obs: Option<ObsReport>,
}

impl FleetFigure {
    /// Renders the comparison as a text report.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Fleet: shared vs isolated signature repositories");
        r.kv("tenants", self.shared.tenants.len());
        r.kv("epochs", self.shared.epochs);
        r.kv(
            "repository start",
            if self.shared.warm_start {
                "warm (snapshot)"
            } else {
                "cold"
            },
        );
        // The BSP barrier is the byte-stable default; only non-BSP runs
        // announce their transport and staleness telemetry.
        if self.shared.transport.name != "bsp" {
            r.kv("transport", &self.shared.transport.name);
            r.kv(
                "view staleness (epochs)",
                format!(
                    "mean {:.2} / max {} over {} tenant-epochs",
                    self.shared.transport.view_staleness.mean(),
                    self.shared.transport.view_staleness.max(),
                    self.shared.transport.view_staleness.total(),
                ),
            );
            r.kv(
                "reuse staleness (epochs)",
                format!(
                    "mean {:.2} / max {} over {} committed hits",
                    self.shared.transport.reuse_staleness.mean(),
                    self.shared.transport.reuse_staleness.max(),
                    self.shared.transport.reuse_staleness.total(),
                ),
            );
        }
        if let Some(f) = &self.shared.faults {
            r.kv(
                "faults injected",
                format!("{} under spec '{}'", f.injected, f.spec),
            );
            r.kv(
                "recovery",
                format!(
                    "{} crashes replayed over {} epochs, {} committer restarts, \
                     {} shard losses, {} checkpoints",
                    f.tenants_crashed,
                    f.replayed_epochs,
                    f.committer_restarts,
                    f.shard_losses,
                    f.checkpoints
                ),
            );
        }
        r.kv("hit rate (shared)", pct(self.shared.fleet_hit_rate()));
        r.kv("hit rate (isolated)", pct(self.isolated.fleet_hit_rate()));
        r.kv("tuning runs (shared)", self.shared.total_tunings());
        r.kv("tuning runs (isolated)", self.isolated.total_tunings());
        r.kv(
            "tunings avoided via fleet reuse",
            self.shared.total_fleet_reuses(),
        );
        if let Some(mean) = self.shared.mean_epochs_to_first_reuse() {
            r.kv(
                "epochs to first fleet reuse",
                format!(
                    "{:.1} (mean over {} of {} tenants)",
                    mean,
                    self.shared.tenants_with_fleet_reuse(),
                    self.shared.tenants.len()
                ),
            );
        }
        r.kv("cross-tenant hits", self.shared.total_cross_tenant_hits());
        r.kv(
            "SLO violation (shared)",
            pct(self.shared.aggregate_slo_violation()),
        );
        r.kv(
            "SLO violation (isolated)",
            pct(self.isolated.aggregate_slo_violation()),
        );
        r.kv(
            "DejaVu cost (shared)",
            format!("${:.2}", self.shared.total_cost()),
        );
        if let (Some(fixed), Some(right)) = (
            self.shared.total_fixed_max_cost(),
            self.shared.total_rightscale_cost(),
        ) {
            r.kv("FixedMax cost", format!("${fixed:.2}"));
            r.kv("RightScale cost", format!("${right:.2}"));
            r.kv(
                "savings vs FixedMax",
                pct(1.0 - self.shared.total_cost() / fixed.max(f64::MIN_POSITIVE)),
            );
        }
        if let Some(repo) = &self.shared.shared_repo {
            r.kv(
                "shared repo",
                format!(
                    "{} entries / {} anchors / {} shards",
                    repo.entries,
                    repo.anchors,
                    repo.shard_stats.len()
                ),
            );
        }
        r.line("");
        r.line(self.shared.render());
        if let Some(obs) = &self.obs {
            r.line("");
            r.line(obs.render());
        }
        r
    }
}

/// Runs the fleet comparison under `opts`. Reads/writes snapshot files when
/// requested; IO or snapshot-format problems surface as errors.
pub fn run_opts(opts: &FleetOptions) -> Result<FleetFigure, Box<dyn std::error::Error>> {
    // Fault schedules ride the asynchronous report path; reject the
    // combination with the barrier up front, with the same typed error the
    // CLI surfaces.
    if let Some(spec) = &opts.faults {
        opts.transport.check_faults(spec)?;
    }
    // Durable checkpointing rides the same commit-boundary capture path as
    // fault recovery, which the barrier transport doesn't have.
    if opts.checkpoint_dir.is_some() && opts.transport == TransportConfig::Bsp {
        return Err(
            "--checkpoint-dir needs an async transport (bounded-staleness or \
             work-stealing): the bsp barrier has no commit-boundary capture path"
                .into(),
        );
    }
    let scenario = if opts.churn {
        churn_fleet(opts.tenants, opts.days, opts.seed, 24)
    } else {
        standard_fleet(opts.tenants, opts.days, opts.seed)
    };
    let config = |sharing, run_baselines| FleetConfig {
        sharing,
        run_baselines,
        transport: opts.transport,
        ..Default::default()
    };
    // One recorder instruments the shared fleet (store + transport + engine
    // probes all aggregate into it); the isolated comparison fleet stays
    // unrecorded so the report describes exactly one run.
    let recorder = if opts.obs {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let mut shared_config = config(SharingMode::Shared, opts.baselines);
    shared_config.recorder = recorder.clone();
    // Faults and checkpointing apply to the shared fleet only: the isolated
    // comparison fleet is the clean reference the shared one is judged
    // against.
    shared_config.faults = opts.faults;
    shared_config.checkpoint_every = opts.checkpoint_every;
    shared_config.checkpoint_dir = opts.checkpoint_dir.clone();
    let engine = FleetEngine::new(scenario.clone(), shared_config);
    let (shared, shard_stats): (FleetReport, Vec<ShardStats>) = match &opts.repo_remote {
        Some(addr) => {
            // Snapshot files and fault schedules belong to the process that
            // owns the repository; over the wire they would silently no-op,
            // so reject them loudly instead.
            if opts.snapshot_in.is_some() || opts.snapshot_out.is_some() {
                return Err("--repo remote cannot read or write snapshot files; \
                     snapshot on the serving side (dejavu-serve --snapshot-in)"
                    .into());
            }
            if opts.faults.is_some() {
                return Err("--repo remote cannot inject faults: crash recovery is the \
                     serving process's business, not its clients'"
                    .into());
            }
            if opts.checkpoint_dir.is_some() {
                return Err(
                    "--repo remote cannot write durable checkpoints; checkpoint \
                     on the serving side (dejavu-serve --checkpoint-dir)"
                        .into(),
                );
            }
            let client: Arc<dyn RepositoryClient> =
                Arc::new(RemoteRepository::connect_tcp(addr, 0)?);
            let shared = engine.run_on_client(Arc::clone(&client));
            let shard_stats = client.shard_stats();
            (shared, shard_stats)
        }
        None => {
            let repo = match &opts.snapshot_in {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    let loaded = SharedSignatureRepository::load_snapshot(&text)?;
                    recorder.event(|| Event::SnapshotLoad {
                        bytes: text.len() as u64,
                    });
                    loaded
                }
                None => SharedSignatureRepository::new(engine.config().repo.clone()),
            };
            let repo = Arc::new(repo.with_recorder(recorder.clone()));
            let shared = engine.run_on(Arc::clone(&repo));
            if let Some(path) = &opts.snapshot_out {
                let text = if opts.snapshot_compact {
                    repo.save_snapshot_compact()
                } else {
                    repo.save_snapshot()
                };
                // Temp + fsync + rename: a crash mid-write must never leave
                // a torn snapshot a later --snapshot-in would reject.
                dejavu_fleet::write_atomic(std::path::Path::new(path), text.as_bytes())?;
            }
            let shard_stats = repo.shard_stats();
            (shared, shard_stats)
        }
    };

    // Fold the store's per-shard hit/miss/evict counters into the obs report
    // alongside the recorder's own metrics (fetched over the wire for remote
    // runs — the statistics live with the serving process).
    let obs = recorder.report().map(|mut report| {
        for (shard, stats) in shard_stats.iter().enumerate() {
            report.push_counter(&format!("shard{shard}.hits"), stats.hits);
            report.push_counter(&format!("shard{shard}.misses"), stats.misses);
            report.push_counter(&format!("shard{shard}.evictions"), stats.evictions);
        }
        report
    });
    if let (Some(path), Some(report)) = (&opts.obs_out, &obs) {
        std::fs::write(path, report.render_json())?;
    }

    // The baselines ignore the repository, so their runs are identical in both
    // fleets; only the shared fleet pays for them.
    let isolated = FleetEngine::new(scenario, config(SharingMode::Isolated, false)).run();
    Ok(FleetFigure {
        shared,
        isolated,
        obs,
    })
}

/// Runs the fleet comparison for `tenants` tenants over `days` days.
pub fn run_with(seed: u64, tenants: usize, days: usize, baselines: bool) -> FleetFigure {
    run_opts(&FleetOptions {
        seed,
        tenants,
        days,
        baselines,
        ..Default::default()
    })
    .expect("fleet run without snapshot IO cannot fail")
}

/// Runs the default-size fleet comparison (40 tenants, 3 days, baselines on).
pub fn run(seed: u64) -> FleetFigure {
    run_with(seed, 40, 3, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_strictly_beats_isolation_on_hit_rate() {
        let fig = run_with(3, 8, 2, false);
        assert!(
            fig.shared.fleet_hit_rate() > fig.isolated.fleet_hit_rate(),
            "shared {} vs isolated {}",
            fig.shared.fleet_hit_rate(),
            fig.isolated.fleet_hit_rate()
        );
        assert!(fig.shared.total_tunings() < fig.isolated.total_tunings());
        let text = fig.report().into_text();
        assert!(text.contains("hit rate (shared)"));
    }

    #[test]
    fn snapshot_round_trip_warm_starts_a_newcomer_fleet() {
        let dir = std::env::temp_dir().join("dejavu-fleet-exp-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        // Per-process file name: concurrent test invocations (debug + release,
        // parallel CI jobs) must not race on one snapshot path.
        let path = dir
            .join(format!("fleet-{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned();

        let seeded = run_opts(&FleetOptions {
            seed: 3,
            tenants: 6,
            days: 2,
            snapshot_out: Some(path.clone()),
            ..Default::default()
        })
        .expect("seeding run");
        assert!(!seeded.shared.warm_start);

        let warm = run_opts(&FleetOptions {
            seed: 9,
            tenants: 2,
            days: 1,
            snapshot_in: Some(path.clone()),
            ..Default::default()
        })
        .expect("warm run");
        assert!(warm.shared.warm_start);
        let cold = run_opts(&FleetOptions {
            seed: 9,
            tenants: 2,
            days: 1,
            ..Default::default()
        })
        .expect("cold run");
        let warm_first = warm
            .shared
            .mean_epochs_to_first_reuse()
            .expect("warm fleet reuses");
        if let Some(cold_first) = cold.shared.mean_epochs_to_first_reuse() {
            assert!(
                warm_first <= cold_first,
                "warm {warm_first} vs cold {cold_first}"
            );
        }
        assert!(warm.report().into_text().contains("warm (snapshot)"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_transport_runs_and_reports_staleness() {
        let bsp = run_opts(&FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            ..Default::default()
        })
        .expect("bsp run");
        let k = 2;
        let fig = run_opts(&FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            transport: TransportConfig::BoundedStaleness { staleness: k },
            ..Default::default()
        })
        .expect("async run");
        assert_eq!(fig.shared.transport.name, "async(staleness=2)");
        assert!(fig.shared.transport.view_staleness.max() <= k);
        let text = fig.report().into_text();
        assert!(text.contains("view staleness"));
        // The BSP report stays free of transport telemetry lines.
        assert!(!bsp.report().into_text().contains("view staleness"));
    }

    #[test]
    fn work_stealing_transport_runs_on_a_capped_pool_and_reports_staleness() {
        let fig = run_opts(&FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            transport: TransportConfig::WorkStealing {
                threads: 2,
                staleness: 1,
                adaptive: false,
            },
            ..Default::default()
        })
        .expect("steal run");
        assert_eq!(fig.shared.transport.name, "steal(threads=2,staleness=1)");
        assert!(fig.shared.transport.view_staleness.max() <= 1);
        assert!(fig.report().into_text().contains("view staleness"));
    }

    #[test]
    fn unknown_transport_names_parse_to_a_helpful_error() {
        let err = TransportConfig::parse("tokio", 4, 1).expect_err("unknown backend");
        assert!(err.contains("'tokio'"), "{err}");
        assert!(err.contains("'steal'"), "{err}");
    }

    #[test]
    fn fault_injected_fleet_converges_and_reports_recovery() {
        let base = FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            ..Default::default()
        };
        let clean = run_opts(&base).expect("fault-free run");
        let faulty = run_opts(&FleetOptions {
            transport: TransportConfig::BoundedStaleness { staleness: 0 },
            faults: Some(FaultSpec::parse("42").expect("valid spec")),
            checkpoint_every: 4,
            ..base
        })
        .expect("fault run");
        let summary = faulty.shared.faults.as_ref().expect("fault summary");
        assert!(summary.injected > 0, "the schedule never fired");
        // At staleness 0 recovery is invisible: the faulty fleet lands on
        // the fault-free barrier's results.
        assert_eq!(
            faulty.shared.fleet_hit_rate(),
            clean.shared.fleet_hit_rate()
        );
        assert_eq!(faulty.shared.total_cost(), clean.shared.total_cost());
        assert_eq!(faulty.shared.hit_rate_curve, clean.shared.hit_rate_curve);
        let text = faulty.report().into_text();
        assert!(text.contains("faults injected"), "{text}");
        assert!(text.contains("recovery"), "{text}");
    }

    #[test]
    fn fault_specs_on_the_bsp_barrier_are_rejected() {
        let err = run_opts(&FleetOptions {
            seed: 3,
            tenants: 2,
            days: 1,
            faults: Some(FaultSpec::parse("7:crash").expect("valid spec")),
            ..Default::default()
        })
        .expect_err("bsp cannot inject faults");
        let message = err.to_string();
        assert!(message.contains("'bsp'"), "{message}");
        assert!(message.contains("cannot inject faults"), "{message}");
    }

    #[test]
    fn malformed_fault_specs_surface_each_typed_rejection() {
        use dejavu_fleet::FaultSpecError;
        // Empty spec.
        let err = FaultSpec::parse("  ").expect_err("empty");
        assert_eq!(err, FaultSpecError::Empty);
        assert!(err.to_string().contains("'crash'"), "{err}");
        // Unparsable seed.
        let err = FaultSpec::parse("banana:crash").expect_err("bad seed");
        assert_eq!(
            err,
            FaultSpecError::BadSeed {
                token: "banana".to_string()
            }
        );
        assert!(err.to_string().contains("banana"), "{err}");
        // Unknown kind, listing the valid ones.
        let err = FaultSpec::parse("7:flood").expect_err("unknown kind");
        assert_eq!(
            err,
            FaultSpecError::UnknownKind {
                kind: "flood".to_string()
            }
        );
        let message = err.to_string();
        for valid in [
            "'crash'",
            "'restart'",
            "'drop'",
            "'dup'",
            "'reorder'",
            "'shard-loss'",
        ] {
            assert!(message.contains(valid), "{message} should list {valid}");
        }
        // A kind list that lists nothing.
        let err = FaultSpec::parse("7:,,").expect_err("no kinds");
        assert_eq!(err, FaultSpecError::NoKinds);
        assert!(err.to_string().contains("valid kinds"), "{err}");
    }

    #[test]
    fn compacted_snapshots_shed_never_hit_entries() {
        let dir = std::env::temp_dir().join("dejavu-fleet-exp-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let full_path = dir
            .join(format!("fleet-full-{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let compact_path = dir
            .join(format!("fleet-compact-{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let base = FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            ..Default::default()
        };
        run_opts(&FleetOptions {
            snapshot_out: Some(full_path.clone()),
            ..base.clone()
        })
        .expect("full snapshot run");
        run_opts(&FleetOptions {
            snapshot_out: Some(compact_path.clone()),
            snapshot_compact: true,
            ..base
        })
        .expect("compacted snapshot run");
        let full = std::fs::read_to_string(&full_path).expect("full snapshot");
        let compact = std::fs::read_to_string(&compact_path).expect("compacted snapshot");
        assert!(
            compact.len() < full.len(),
            "compaction shed nothing: {} vs {} bytes",
            compact.len(),
            full.len()
        );
        // The compacted snapshot still loads and warm-starts a fleet.
        let warm = run_opts(&FleetOptions {
            seed: 9,
            tenants: 2,
            days: 1,
            snapshot_in: Some(compact_path.clone()),
            ..Default::default()
        })
        .expect("warm run from compacted snapshot");
        assert!(warm.shared.warm_start);
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&compact_path).ok();
    }

    #[test]
    fn remote_repo_runs_bit_match_local_runs_and_reject_local_only_options() {
        use dejavu_fleet::SharedRepoConfig;
        let base = FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            ..Default::default()
        };
        let local = run_opts(&base).expect("local run");

        let handle = dejavu_serve::serve_tcp(
            Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default())),
            "127.0.0.1:0",
            dejavu_serve::ServeConfig::default(),
        )
        .expect("server binds");
        let addr = handle.tcp_addr().expect("tcp server").to_string();
        let remote = run_opts(&FleetOptions {
            repo_remote: Some(addr.clone()),
            ..base.clone()
        })
        .expect("remote run");
        assert_eq!(
            format!("{:?}", local.shared),
            format!("{:?}", remote.shared),
            "the wire run diverged from the in-process run"
        );

        // Local-only options are rejected loudly, not silently no-oped.
        let err = run_opts(&FleetOptions {
            repo_remote: Some(addr.clone()),
            snapshot_out: Some("unused.snap".into()),
            ..base.clone()
        })
        .expect_err("snapshots over the wire");
        assert!(err.to_string().contains("serving side"), "{err}");
        let err = run_opts(&FleetOptions {
            repo_remote: Some(addr),
            transport: TransportConfig::BoundedStaleness { staleness: 0 },
            faults: Some(FaultSpec::parse("42").expect("valid spec")),
            ..base
        })
        .expect_err("faults over the wire");
        assert!(err.to_string().contains("serving process"), "{err}");
        handle.stop();
    }

    #[test]
    fn snapshot_out_writes_atomically() {
        let dir = std::env::temp_dir().join("dejavu-fleet-exp-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir
            .join(format!("fleet-atomic-{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        // Pre-plant garbage at the target: the atomic write must replace it
        // whole (a direct `fs::write` truncates first, so a crash mid-write
        // leaves a torn file a later --snapshot-in rejects).
        std::fs::write(&path, "not a snapshot").expect("plant garbage");
        run_opts(&FleetOptions {
            seed: 3,
            tenants: 4,
            days: 1,
            snapshot_out: Some(path.clone()),
            ..Default::default()
        })
        .expect("snapshot run");
        // The replaced file parses, and the temp sibling is gone.
        let text = std::fs::read_to_string(&path).expect("snapshot file");
        SharedSignatureRepository::load_snapshot(&text).expect("snapshot loads");
        assert!(
            !std::path::Path::new(&format!("{path}.tmp")).exists(),
            "temp file leaked"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_dir_replays_to_the_final_repository_state() {
        use dejavu_fleet::DurableCheckpointStore;
        let ckpt =
            std::env::temp_dir().join(format!("dejavu-fleet-exp-ckpt-{}", std::process::id()));
        let snap = std::env::temp_dir()
            .join(format!("dejavu-fleet-exp-ckpt-{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let fig = run_opts(&FleetOptions {
            seed: 3,
            tenants: 6,
            days: 1,
            transport: TransportConfig::BoundedStaleness { staleness: 0 },
            checkpoint_every: 4,
            checkpoint_dir: Some(ckpt.to_string_lossy().into_owned()),
            snapshot_out: Some(snap.clone()),
            ..Default::default()
        })
        .expect("checkpointed run");
        let summary = fig.shared.faults.as_ref().expect("checkpoint telemetry");
        assert!(summary.checkpoints > 0, "no checkpoints were recorded");
        // The directory replays, unaided, to the run's final repository.
        let (_, report) = DurableCheckpointStore::open(&ckpt, 4).expect("directory replays");
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        let final_snapshot = std::fs::read_to_string(&snap).expect("snapshot file");
        let final_repo =
            SharedSignatureRepository::load_snapshot(&final_snapshot).expect("snapshot loads");
        assert_eq!(
            dejavu_fleet::snapshot::encode(&report.resumed),
            final_repo.save_snapshot(),
            "replayed checkpoint directory diverged from the final repository"
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_dir_all(&ckpt).ok();
    }

    #[test]
    fn checkpoint_dir_on_the_bsp_barrier_is_rejected() {
        let err = run_opts(&FleetOptions {
            seed: 3,
            tenants: 2,
            days: 1,
            checkpoint_dir: Some("unused-dir".into()),
            ..Default::default()
        })
        .expect_err("bsp cannot checkpoint durably");
        assert!(err.to_string().contains("async transport"), "{err}");

        let handle = dejavu_serve::serve_tcp(
            Arc::new(SharedSignatureRepository::new(
                dejavu_fleet::SharedRepoConfig::default(),
            )),
            "127.0.0.1:0",
            dejavu_serve::ServeConfig::default(),
        )
        .expect("server binds");
        let addr = handle.tcp_addr().expect("tcp server").to_string();
        let err = run_opts(&FleetOptions {
            seed: 3,
            tenants: 2,
            days: 1,
            transport: TransportConfig::BoundedStaleness { staleness: 0 },
            checkpoint_dir: Some("unused-dir".into()),
            repo_remote: Some(addr),
            ..Default::default()
        })
        .expect_err("durable checkpoints over the wire");
        assert!(err.to_string().contains("serving side"), "{err}");
        handle.stop();
    }

    #[test]
    fn churn_scenario_runs_and_reports_late_joiners() {
        let fig = run_opts(&FleetOptions {
            seed: 5,
            tenants: 8,
            days: 2,
            churn: true,
            ..Default::default()
        })
        .expect("churn run");
        assert!(
            fig.shared.tenants.iter().any(|t| t.joined_epoch > 0),
            "no late joiner"
        );
        assert!(
            fig.shared
                .tenants
                .iter()
                .any(|t| t.active_epochs < fig.shared.epochs),
            "no early leaver"
        );
    }
}
