//! Network and latency overhead accounting for the proxy (§4.4 of the paper).

use serde::{Deserialize, Serialize};

/// Network overhead of duplicating one service instance's inbound traffic to
/// the profiling environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkOverhead {
    /// Number of instances the service runs on.
    pub num_instances: u32,
    /// Ratio of inbound (client request) to outbound (response) traffic;
    /// the paper assumes 1:10 for typical services.
    pub inbound_outbound_ratio: f64,
}

impl NetworkOverhead {
    /// Creates the overhead model.
    ///
    /// # Panics
    ///
    /// Panics if `num_instances` is zero or the ratio is not positive.
    pub fn new(num_instances: u32, inbound_outbound_ratio: f64) -> Self {
        assert!(num_instances > 0, "need at least one instance");
        assert!(inbound_outbound_ratio > 0.0, "ratio must be positive");
        NetworkOverhead {
            num_instances,
            inbound_outbound_ratio,
        }
    }

    /// The paper's running example: 100 instances, 1:10 inbound/outbound.
    pub fn paper_example() -> Self {
        NetworkOverhead::new(100, 0.1)
    }

    /// Fraction of the service's *inbound* traffic that is duplicated
    /// (continuously profiling a single instance duplicates `1/n` of it).
    pub fn duplicated_inbound_fraction(&self) -> f64 {
        1.0 / self.num_instances as f64
    }

    /// Fraction of the service's *total* (inbound + outbound) traffic that the
    /// duplication adds.
    pub fn total_traffic_fraction(&self) -> f64 {
        let inbound_share = self.inbound_outbound_ratio / (1.0 + self.inbound_outbound_ratio);
        self.duplicated_inbound_fraction() * inbound_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_about_a_tenth_of_a_percent() {
        let o = NetworkOverhead::paper_example();
        assert!((o.duplicated_inbound_fraction() - 0.01).abs() < 1e-12);
        let total = o.total_traffic_fraction();
        assert!(total < 0.001 + 1e-6, "total fraction {total}");
        assert!(total > 0.0005, "total fraction {total}");
    }

    #[test]
    fn fewer_instances_mean_more_overhead() {
        let few = NetworkOverhead::new(2, 0.1);
        let many = NetworkOverhead::new(50, 0.1);
        assert!(few.total_traffic_fraction() > many.total_traffic_fraction());
    }

    #[test]
    #[should_panic]
    fn zero_instances_rejected() {
        let _ = NetworkOverhead::new(0, 0.1);
    }
}
