//! The online classifier: the "cache lookup" operation of DejaVu (§3.5).
//!
//! After clustering, each training signature is labeled with its cluster and a
//! classifier (C4.5-style decision tree by default, naive Bayes as an
//! alternative) is trained to recognize newly encountered workloads in
//! milliseconds. Along with the predicted class, the classifier reports a
//! certainty level; low certainty — or a signature that is far from every
//! known cluster — marks an unforeseen workload and triggers the full-capacity
//! fallback.

use crate::clustering::ClusteringOutcome;
use crate::error::DejaVuError;
use dejavu_metrics::WorkloadSignature;
use dejavu_ml::{Classifier, Dataset, DecisionTree, DecisionTreeConfig, NaiveBayes};
use serde::{Deserialize, Serialize};

/// Which classifier family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// C4.5-style decision tree (the paper's J48 choice).
    DecisionTree,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Nearest-centroid assignment (no trained model; ablation baseline).
    NearestCentroid,
}

/// The trained model variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Model {
    Tree(DecisionTree),
    Bayes(NaiveBayes),
    Centroid,
}

/// The result of classifying one signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The workload class the signature was assigned to.
    pub class: usize,
    /// Certainty level in `[0, 1]`.
    pub certainty: f64,
    /// Whether the signature is so far from every known class that it should
    /// be treated as an unforeseen workload regardless of certainty.
    pub novel: bool,
    /// Distance to the nearest cluster centroid in normalized space.
    pub distance_to_centroid: f64,
}

/// The online classifier built from a clustering outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineClassifier {
    model: Model,
    clustering: ClusteringOutcome,
    novelty_margin: f64,
    certainty_threshold: f64,
}

impl OnlineClassifier {
    /// Trains a classifier on the learning-phase signatures and their cluster
    /// assignments.
    ///
    /// # Errors
    ///
    /// Returns [`DejaVuError::NoTrainingData`] for empty input and propagates
    /// training errors.
    pub fn train(
        kind: ClassifierKind,
        signatures: &[WorkloadSignature],
        clustering: &ClusteringOutcome,
        novelty_margin: f64,
        certainty_threshold: f64,
    ) -> Result<Self, DejaVuError> {
        if signatures.is_empty() {
            return Err(DejaVuError::NoTrainingData);
        }
        let names = signatures[0].names().to_vec();
        let mut dataset = Dataset::new(names);
        for (sig, &label) in signatures.iter().zip(&clustering.assignments) {
            let normalized = clustering.normalize(sig.values());
            dataset
                .try_push(dejavu_ml::Instance::labeled(normalized, label))
                .map_err(DejaVuError::from)?;
        }
        let model = match kind {
            ClassifierKind::DecisionTree => {
                Model::Tree(DecisionTree::fit(&dataset, &DecisionTreeConfig::default())?)
            }
            ClassifierKind::NaiveBayes => Model::Bayes(NaiveBayes::fit(&dataset)?),
            ClassifierKind::NearestCentroid => Model::Centroid,
        };
        Ok(OnlineClassifier {
            model,
            clustering: clustering.clone(),
            novelty_margin,
            certainty_threshold,
        })
    }

    /// Number of workload classes.
    pub fn num_classes(&self) -> usize {
        self.clustering.num_classes()
    }

    /// The certainty threshold below which a classification is distrusted.
    pub fn certainty_threshold(&self) -> f64 {
        self.certainty_threshold
    }

    /// Classifies a signature.
    pub fn classify(&self, signature: &WorkloadSignature) -> Classification {
        let normalized = self.clustering.normalize(signature.values());
        // One pass over the centroids for both the assignment and its
        // distance — this runs on every periodic profile, fleet-wide.
        let (nearest, distance) = self.clustering.kmeans.assign_with_distance(&normalized);
        // A signature much farther from its nearest centroid than that
        // cluster's own radius is an unforeseen workload. A floor tied to the
        // inter-centroid spacing keeps very tight clusters from flagging every
        // small deviation as novel.
        let scale = self
            .clustering
            .cluster_scale(nearest)
            .max(0.3 * self.clustering.min_centroid_distance);
        let novel = distance > self.novelty_margin * scale;
        let (class, certainty) = match &self.model {
            Model::Tree(t) => t.predict_with_confidence(&normalized),
            Model::Bayes(b) => b.predict_with_confidence(&normalized),
            Model::Centroid => {
                // Confidence decays with distance, reaching 0.5 at the novelty
                // boundary (beyond which the classification is rejected anyway).
                let reach = (scale * self.novelty_margin).max(f64::MIN_POSITIVE);
                let conf = (1.0 - 0.5 * distance / reach).clamp(0.0, 1.0);
                (nearest, conf)
            }
        };
        Classification {
            class,
            certainty,
            novel,
            distance_to_centroid: distance,
        }
    }

    /// Returns true if `classification` should be trusted for a cache lookup.
    pub fn is_confident(&self, classification: &Classification) -> bool {
        !classification.novel && classification.certainty >= self.certainty_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::WorkloadClusterer;
    use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
    use dejavu_simcore::SimRng;
    use dejavu_traces::ServiceKind;

    /// Mirrors the controller pipeline: coarse clustering for labels, CFS
    /// feature selection, then clustering and training on the selected metrics.
    fn setup(
        kind: ClassifierKind,
    ) -> (
        OnlineClassifier,
        crate::signature::SignatureBuilder,
        MetricSampler,
        SimRng,
    ) {
        let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
        let mut rng = SimRng::seed_from_u64(10);
        let levels = [0.2, 0.45, 0.55, 0.95];
        let mut sigs = Vec::new();
        for &l in &levels {
            let p = WorkloadPoint::new(ServiceKind::Cassandra, l, 0.05);
            for _ in 0..6 {
                sigs.push(sampler.sample(&p, &mut rng));
            }
        }
        let clusterer = WorkloadClusterer::new((2, 8), 10);
        let coarse = clusterer.cluster(&sigs).unwrap();
        let builder =
            crate::signature::SignatureBuilder::select(&sigs, &coarse.assignments, 8).unwrap();
        let projected: Vec<WorkloadSignature> = sigs.iter().map(|s| builder.project(s)).collect();
        let clustering = clusterer.cluster(&projected).unwrap();
        let clf = OnlineClassifier::train(kind, &projected, &clustering, 1.8, 0.6).unwrap();
        (clf, builder, sampler, SimRng::seed_from_u64(77))
    }

    fn sig(
        builder: &crate::signature::SignatureBuilder,
        sampler: &MetricSampler,
        rng: &mut SimRng,
        level: f64,
    ) -> WorkloadSignature {
        builder.project(&sampler.sample(
            &WorkloadPoint::new(ServiceKind::Cassandra, level, 0.05),
            rng,
        ))
    }

    #[test]
    fn known_workloads_are_classified_with_confidence() {
        for kind in [
            ClassifierKind::DecisionTree,
            ClassifierKind::NaiveBayes,
            ClassifierKind::NearestCentroid,
        ] {
            let (clf, builder, sampler, mut rng) = setup(kind);
            assert!(
                (3..=5).contains(&clf.num_classes()),
                "classes {}",
                clf.num_classes()
            );
            let c = clf.classify(&sig(&builder, &sampler, &mut rng, 0.45));
            assert!(clf.is_confident(&c), "{kind:?} should be confident: {c:?}");
            // Two samples of the same plateau land in the same class.
            let c2 = clf.classify(&sig(&builder, &sampler, &mut rng, 0.46));
            assert_eq!(c.class, c2.class);
        }
    }

    #[test]
    fn different_plateaus_map_to_different_classes() {
        let (clf, builder, sampler, mut rng) = setup(ClassifierKind::DecisionTree);
        let low = clf.classify(&sig(&builder, &sampler, &mut rng, 0.2));
        let high = clf.classify(&sig(&builder, &sampler, &mut rng, 0.95));
        assert_ne!(low.class, high.class);
    }

    #[test]
    fn unforeseen_volume_is_flagged_as_novel() {
        let (clf, builder, sampler, mut rng) = setup(ClassifierKind::DecisionTree);
        // 0.75 sits between the learned 0.55 and 0.95 plateaus — an unseen level.
        let c = clf.classify(&sig(&builder, &sampler, &mut rng, 0.75));
        assert!(c.novel, "unseen level must be novel: {c:?}");
        assert!(!clf.is_confident(&c));
        // Small deviations around a learned plateau are NOT novel.
        let near = clf.classify(&sig(&builder, &sampler, &mut rng, 0.57));
        assert!(!near.novel, "near-plateau workload flagged novel: {near:?}");
    }

    #[test]
    fn certainty_is_a_probability() {
        let (clf, builder, sampler, mut rng) = setup(ClassifierKind::NaiveBayes);
        let c = clf.classify(&sig(&builder, &sampler, &mut rng, 0.55));
        assert!((0.0..=1.0).contains(&c.certainty));
        assert_eq!(clf.certainty_threshold(), 0.6);
    }

    #[test]
    fn empty_training_is_an_error() {
        let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        let sigs = vec![sampler.sample(
            &WorkloadPoint::new(ServiceKind::Cassandra, 0.5, 0.05),
            &mut rng,
        )];
        let clustering = WorkloadClusterer::new((1, 1), 1).cluster(&sigs).unwrap();
        assert!(matches!(
            OnlineClassifier::train(ClassifierKind::DecisionTree, &[], &clustering, 1.8, 0.6),
            Err(DejaVuError::NoTrainingData)
        ));
    }
}
