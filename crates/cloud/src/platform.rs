//! The simulated hosting platform: applies allocations with realistic delays,
//! reports effective capacity, and meters cost.

use crate::allocation::{AllocationSpace, ResourceAllocation};
use crate::cost::CostMeter;
use crate::error::CloudError;
use crate::interference::{InterferenceLevel, InterferenceSchedule};
use dejavu_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Platform configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Delay before pre-created instances become available after a scale-out /
    /// scale-up request (the paper pre-creates stopped VMs, so this is short).
    pub boot_delay: SimDuration,
    /// Additional warm-up during which newly added capacity is only half
    /// effective (cold caches, state rebalancing handled separately by the
    /// service models).
    pub warmup_delay: SimDuration,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            boot_delay: SimDuration::from_secs(30.0),
            warmup_delay: SimDuration::from_secs(60.0),
        }
    }
}

/// A pending reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingChange {
    target: ResourceAllocation,
    effective_at: SimTime,
}

/// The simulated virtualized platform a service is deployed on.
///
/// # Example
///
/// ```
/// use dejavu_cloud::{AllocationSpace, CloudPlatform, PlatformConfig, ResourceAllocation};
/// use dejavu_cloud::InterferenceSchedule;
/// use dejavu_simcore::{SimDuration, SimTime};
///
/// let space = AllocationSpace::scale_out(1, 10)?;
/// let mut platform = CloudPlatform::new(
///     PlatformConfig::default(),
///     space,
///     ResourceAllocation::large(2),
///     InterferenceSchedule::none(),
/// );
/// platform.request(SimTime::ZERO, ResourceAllocation::large(4), SimDuration::from_secs(10.0));
/// // Before the change takes effect the old allocation still serves.
/// assert_eq!(platform.allocation_at(SimTime::from_secs(5.0)).count(), 2);
/// assert_eq!(platform.allocation_at(SimTime::from_secs(120.0)).count(), 4);
/// # Ok::<(), dejavu_cloud::CloudError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudPlatform {
    config: PlatformConfig,
    space: AllocationSpace,
    interference: InterferenceSchedule,
    current: ResourceAllocation,
    current_since: SimTime,
    pending: Option<PendingChange>,
    cost: CostMeter,
    reconfigurations: usize,
}

impl CloudPlatform {
    /// Creates a platform with an initial allocation already running.
    pub fn new(
        config: PlatformConfig,
        space: AllocationSpace,
        initial: ResourceAllocation,
        interference: InterferenceSchedule,
    ) -> Self {
        let mut cost = CostMeter::new();
        cost.record(SimTime::ZERO, initial);
        CloudPlatform {
            config,
            space,
            interference,
            current: initial,
            current_since: SimTime::ZERO,
            pending: None,
            cost,
            reconfigurations: 0,
        }
    }

    /// The allocation search space this platform supports.
    pub fn space(&self) -> &AllocationSpace {
        &self.space
    }

    /// The cost meter (records every applied allocation).
    pub fn cost_meter(&self) -> &CostMeter {
        &self.cost
    }

    /// Number of reconfigurations applied so far.
    pub fn reconfigurations(&self) -> usize {
        self.reconfigurations
    }

    /// Requests that `target` be deployed. The reconfiguration takes effect
    /// after `decision_latency` plus the platform boot delay (when capacity is
    /// added or the instance type changes). Requests targeting the current
    /// allocation are ignored; a new request replaces any pending one.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::InvalidAllocation`] if `target` is not in the
    /// platform's allocation space.
    pub fn try_request(
        &mut self,
        now: SimTime,
        target: ResourceAllocation,
        decision_latency: SimDuration,
    ) -> Result<(), CloudError> {
        if self.space.index_of(target).is_none() {
            return Err(CloudError::InvalidAllocation {
                reason: format!("{target} is not in the allocation space"),
            });
        }
        self.apply_pending(now);
        if target == self.current && self.pending.is_none() {
            return Ok(());
        }
        let needs_boot = target.capacity_units() > self.current.capacity_units()
            || target.instance_type() != self.current.instance_type();
        let delay = if needs_boot {
            decision_latency + self.config.boot_delay
        } else {
            decision_latency
        };
        self.pending = Some(PendingChange {
            target,
            effective_at: now + delay,
        });
        Ok(())
    }

    /// Like [`try_request`](Self::try_request) but panics on an allocation
    /// outside the platform's space (a controller bug).
    pub fn request(
        &mut self,
        now: SimTime,
        target: ResourceAllocation,
        decision_latency: SimDuration,
    ) {
        self.try_request(now, target, decision_latency)
            .expect("controllers must only request allocations from the platform's space");
    }

    fn apply_pending(&mut self, now: SimTime) {
        if let Some(p) = self.pending {
            if now >= p.effective_at {
                if p.target != self.current {
                    self.current = p.target;
                    self.current_since = p.effective_at;
                    self.cost.record(p.effective_at, p.target);
                    self.reconfigurations += 1;
                }
                self.pending = None;
            }
        }
    }

    /// The allocation serving traffic at `time` (applies any due pending change).
    pub fn allocation_at(&mut self, time: SimTime) -> ResourceAllocation {
        self.apply_pending(time);
        self.current
    }

    /// When a pending reconfiguration (if any) will take effect.
    pub fn pending_effective_at(&self) -> Option<SimTime> {
        self.pending.map(|p| p.effective_at)
    }

    /// The interference level co-located tenants impose at `time`.
    pub fn interference_at(&self, time: SimTime) -> InterferenceLevel {
        self.interference.level_at(time)
    }

    /// Effective capacity (in capacity units) available to the service at
    /// `time`: the deployed allocation, reduced while freshly added capacity is
    /// warming up, and reduced by interference.
    pub fn effective_capacity(&mut self, time: SimTime) -> f64 {
        self.apply_pending(time);
        let mut capacity = self.current.capacity_units();
        let warm_until = self.current_since + self.config.warmup_delay;
        if time < warm_until && self.reconfigurations > 0 {
            // Newly reconfigured: run at 75% effectiveness while warming up.
            capacity *= 0.75;
        }
        capacity * self.interference.level_at(time).capacity_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(initial: u32) -> CloudPlatform {
        CloudPlatform::new(
            PlatformConfig::default(),
            AllocationSpace::scale_out(1, 10).unwrap(),
            ResourceAllocation::large(initial),
            InterferenceSchedule::none(),
        )
    }

    #[test]
    fn scale_out_takes_boot_delay() {
        let mut p = platform(2);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(6),
            SimDuration::from_secs(10.0),
        );
        assert_eq!(p.allocation_at(SimTime::from_secs(20.0)).count(), 2);
        assert_eq!(p.allocation_at(SimTime::from_secs(41.0)).count(), 6);
        assert_eq!(p.reconfigurations(), 1);
    }

    #[test]
    fn scale_down_skips_boot_delay() {
        let mut p = platform(8);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(4),
            SimDuration::from_secs(10.0),
        );
        assert_eq!(p.allocation_at(SimTime::from_secs(11.0)).count(), 4);
    }

    #[test]
    fn requesting_current_allocation_is_a_noop() {
        let mut p = platform(5);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(5),
            SimDuration::from_secs(10.0),
        );
        assert!(p.pending_effective_at().is_none());
        assert_eq!(p.reconfigurations(), 0);
        assert_eq!(p.cost_meter().num_changes(), 1);
    }

    #[test]
    fn invalid_allocation_is_rejected() {
        let mut p = platform(2);
        let err = p
            .try_request(
                SimTime::ZERO,
                ResourceAllocation::extra_large(3),
                SimDuration::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, CloudError::InvalidAllocation { .. }));
    }

    #[test]
    fn warmup_reduces_effective_capacity() {
        let mut p = platform(2);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(8),
            SimDuration::ZERO,
        );
        // Boot delay 30 s, then warm-up 60 s at reduced effectiveness.
        let during_warmup = p.effective_capacity(SimTime::from_secs(40.0));
        assert!((during_warmup - 6.0).abs() < 1e-9, "75% of 8 units");
        let after = p.effective_capacity(SimTime::from_secs(120.0));
        assert!((after - 8.0).abs() < 1e-9);
    }

    #[test]
    fn interference_reduces_capacity() {
        let mut p = CloudPlatform::new(
            PlatformConfig::default(),
            AllocationSpace::scale_out(1, 10).unwrap(),
            ResourceAllocation::large(10),
            InterferenceSchedule::constant(InterferenceLevel::new(0.2)),
        );
        assert!((p.effective_capacity(SimTime::from_hours(1.0)) - 8.0).abs() < 1e-9);
        assert_eq!(p.interference_at(SimTime::from_hours(1.0)).fraction(), 0.2);
    }

    #[test]
    fn cost_meter_tracks_changes() {
        let mut p = platform(2);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(10),
            SimDuration::ZERO,
        );
        let _ = p.allocation_at(SimTime::from_hours(1.0));
        assert_eq!(p.cost_meter().num_changes(), 2);
        let cost = p.cost_meter().total_cost(SimTime::from_hours(1.0));
        assert!(cost > 2.0 * 0.34 * 0.9 && cost < 10.0 * 0.34 * 1.1);
    }

    #[test]
    fn newer_request_replaces_pending() {
        let mut p = platform(2);
        p.request(
            SimTime::ZERO,
            ResourceAllocation::large(10),
            SimDuration::from_secs(100.0),
        );
        p.request(
            SimTime::from_secs(10.0),
            ResourceAllocation::large(4),
            SimDuration::from_secs(1.0),
        );
        // The second (cheaper, faster) request wins.
        assert_eq!(p.allocation_at(SimTime::from_secs(200.0)).count(), 4);
    }
}
