//! Offline mini-channel stand-in for the `crossbeam-channel` API surface.
//!
//! The workspace builds hermetically (no registry access), so this crate
//! provides the small mpsc subset `dejavu-fleet`'s async commit transport
//! needs — `unbounded`/`bounded` channels with cloneable senders, blocking
//! `recv`, and sender-drop disconnection — implemented over a
//! `Mutex<VecDeque>` + `Condvar` pair. It mirrors the real crate's names and
//! result types, so swapping the genuine dependency in is a manifest change
//! only. A `Mutex`-guarded queue is plenty here: the transport sends one
//! message per tenant per epoch, far below contention territory.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every [`Receiver`] is gone.
/// Carries the unsent message back to the caller, like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// [`Sender`] has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty, but senders still exist.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Bounded channels only: senders may hold at most this many queued
    /// messages before blocking.
    capacity: Option<usize>,
    /// Signalled when a message arrives or the last sender disconnects.
    not_empty: Condvar,
    /// Signalled when a message leaves a full bounded channel (or the last
    /// receiver disconnects, releasing blocked senders).
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable: the transport hands one to every
/// tenant worker thread.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel of unlimited capacity: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `capacity` queued messages: `send`
/// blocks while the channel is full. A zero capacity is rounded up to one
/// (this stand-in has no rendezvous mode).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `message`, blocking while a bounded channel is full. Fails —
    /// returning the message — once every receiver is gone.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(message));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.inner.not_full.wait(state).expect("channel poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(message);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers so a blocked `recv` observes the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty. Fails
    /// once the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Dequeues the next message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        if let Some(message) = state.queue.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(message);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator over received messages, ending at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake senders blocked on a full bounded channel so their `send`
            // observes the disconnect instead of sleeping forever.
            self.inner.not_full.notify_all();
        }
    }
}

/// Blocking message iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let (tx, rx) = unbounded();
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        tx.send(t * per_thread + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..threads * per_thread).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_channel_blocks_and_drains() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        std::thread::scope(|scope| {
            let tx = tx.clone();
            scope.spawn(move || tx.send(3).unwrap());
            // The consumer frees a slot; the blocked producer completes.
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        });
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_once_the_receiver_is_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_recv_reports_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
