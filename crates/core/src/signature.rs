//! Signature acquisition: turning profiled metric vectors into the compact
//! workload signature used for clustering and classification (§3.3).
//!
//! During the learning phase DejaVu records the full metric catalogue for each
//! profiled workload. [`SignatureBuilder`] then runs CFS feature selection
//! (with the workload-class labels) to pick the small set of metrics that form
//! the signature, and projects any future full-catalogue signature onto that
//! set.

use dejavu_metrics::WorkloadSignature;
use dejavu_ml::{CfsSelector, Dataset, FeatureSelection, MlError};
use serde::{Deserialize, Serialize};

/// Selects and applies the signature-forming metric subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureBuilder {
    selection: FeatureSelection,
    /// The selected metric names, shared with every projected signature so
    /// the per-profile projection allocates only the value vector.
    projected_names: std::sync::Arc<[String]>,
}

impl SignatureBuilder {
    /// Runs feature selection over labeled full-catalogue signatures.
    ///
    /// `labels[i]` is the workload class of `signatures[i]` (e.g. the k-means
    /// cluster assignment).
    ///
    /// # Errors
    ///
    /// Returns an [`MlError`] if the inputs are empty or inconsistent.
    pub fn select(
        signatures: &[WorkloadSignature],
        labels: &[usize],
        max_metrics: usize,
    ) -> Result<Self, MlError> {
        if signatures.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if signatures.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: signatures.len(),
                found: labels.len(),
            });
        }
        let names = signatures[0].names().to_vec();
        let mut dataset = Dataset::new(names);
        for (sig, &label) in signatures.iter().zip(labels) {
            dataset.try_push(dejavu_ml::Instance::labeled(sig.values().to_vec(), label))?;
        }
        let selection = CfsSelector::new(max_metrics).select(&dataset)?;
        let projected_names = selection.selected_names.clone().into();
        Ok(SignatureBuilder {
            selection,
            projected_names,
        })
    }

    /// A builder that keeps every metric (used when feature selection is
    /// disabled in ablations).
    pub fn identity(signature: &WorkloadSignature) -> Self {
        let selected: Vec<usize> = (0..signature.len()).collect();
        SignatureBuilder {
            selection: FeatureSelection {
                selected_names: signature.names().to_vec(),
                selected,
                merit: 0.0,
                merit_trace: Vec::new(),
            },
            projected_names: signature.shared_names(),
        }
    }

    /// Names of the selected signature metrics, in selection order.
    pub fn metric_names(&self) -> &[String] {
        &self.selection.selected_names
    }

    /// Indices of the selected metrics within the full catalogue.
    pub fn metric_indices(&self) -> &[usize] {
        &self.selection.selected
    }

    /// The CFS merit of the selected subset.
    pub fn merit(&self) -> f64 {
        self.selection.merit
    }

    /// Projects a full-catalogue signature onto the selected metrics.
    pub fn project(&self, signature: &WorkloadSignature) -> WorkloadSignature {
        signature.project_shared(
            &self.selection.selected,
            std::sync::Arc::clone(&self.projected_names),
        )
    }

    /// Projects the raw values of a full-catalogue signature.
    pub fn project_values(&self, signature: &WorkloadSignature) -> Vec<f64> {
        self.selection.project_vector(signature.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
    use dejavu_simcore::SimRng;
    use dejavu_traces::ServiceKind;

    fn profiled(
        intensities: &[f64],
        per: usize,
        seed: u64,
    ) -> (Vec<WorkloadSignature>, Vec<usize>) {
        let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sigs = Vec::new();
        let mut labels = Vec::new();
        for (label, &i) in intensities.iter().enumerate() {
            let point = WorkloadPoint::new(ServiceKind::Rubis, i, 0.8);
            for _ in 0..per {
                sigs.push(sampler.sample(&point, &mut rng));
                labels.push(label);
            }
        }
        (sigs, labels)
    }

    #[test]
    fn selects_a_small_informative_subset() {
        let (sigs, labels) = profiled(&[0.2, 0.5, 0.8], 8, 1);
        let builder = SignatureBuilder::select(&sigs, &labels, 8).unwrap();
        assert!(!builder.metric_names().is_empty());
        assert!(builder.metric_names().len() <= 8);
        assert!(builder.merit() > 0.0);
        // The deliberately uninformative counters must not be selected.
        assert!(!builder.metric_names().iter().any(|n| n == "prefetch_hits"));
        let projected = builder.project(&sigs[0]);
        assert_eq!(projected.len(), builder.metric_names().len());
        assert_eq!(
            builder.project_values(&sigs[0]),
            projected.values().to_vec()
        );
    }

    #[test]
    fn identity_builder_keeps_everything() {
        let (sigs, _) = profiled(&[0.5], 1, 2);
        let builder = SignatureBuilder::identity(&sigs[0]);
        assert_eq!(builder.metric_names().len(), sigs[0].len());
        assert_eq!(builder.project(&sigs[0]).values(), sigs[0].values());
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            SignatureBuilder::select(&[], &[], 4),
            Err(MlError::EmptyDataset)
        ));
        let (sigs, _) = profiled(&[0.5], 2, 3);
        assert!(SignatureBuilder::select(&sigs, &[0], 4).is_err());
    }
}
