//! The state-of-the-art experiment-driven controller: whenever the workload
//! changes it re-runs a sandboxed tuning process (as in JustRunIt [42]),
//! spending minutes per adaptation — the behaviour Figure 1 illustrates and
//! the ~3-minute adaptation time the paper compares DejaVu's ~10 s against.

use dejavu_cloud::{
    AllocationSpace, ControllerDecision, DecisionReason, Observation, ProvisioningController,
};
use dejavu_services::service::EvalContext;
use dejavu_services::ServiceModel;
use dejavu_simcore::{SimDuration, SimTime};

/// The experiment-driven retuning controller.
pub struct OnlineTuning {
    service: Box<dyn ServiceModel>,
    space: AllocationSpace,
    /// Duration of each sandboxed experiment.
    per_experiment: SimDuration,
    /// Minimum relative workload change that triggers retuning.
    change_threshold: f64,
    last_tuned_intensity: Option<f64>,
}

impl OnlineTuning {
    /// Creates the controller with the paper's ≈3-minute total adaptation time
    /// (a handful of ≈36 s experiments per tuning run).
    pub fn new(service: Box<dyn ServiceModel>, space: AllocationSpace) -> Self {
        OnlineTuning {
            service,
            space,
            per_experiment: SimDuration::from_secs(36.0),
            change_threshold: 0.05,
            last_tuned_intensity: None,
        }
    }

    /// Overrides the per-experiment duration.
    pub fn with_experiment_duration(mut self, per_experiment: SimDuration) -> Self {
        self.per_experiment = per_experiment;
        self
    }

    fn workload_changed(&self, intensity: f64) -> bool {
        match self.last_tuned_intensity {
            None => true,
            Some(last) => (intensity - last).abs() > self.change_threshold,
        }
    }
}

impl std::fmt::Debug for OnlineTuning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineTuning")
            .field("per_experiment", &self.per_experiment)
            .finish()
    }
}

impl ProvisioningController for OnlineTuning {
    fn name(&self) -> &str {
        "online-tuning"
    }

    fn decide(&mut self, observation: &Observation) -> ControllerDecision {
        let intensity = observation.workload.intensity.value();
        if !self.workload_changed(intensity) {
            return ControllerDecision::keep();
        }
        // Linear search over the allocation space, one sandboxed experiment per
        // candidate, exactly like DejaVu's Tuner — but repeated on every
        // workload change because nothing is cached.
        let mut experiments = 0usize;
        let mut chosen = self.space.full_capacity();
        for &candidate in self.space.candidates() {
            experiments += 1;
            let sample = self.service.evaluate(
                intensity,
                &EvalContext::steady(SimTime::ZERO, candidate.capacity_units()),
            );
            if self.service.slo().is_met(&sample) {
                chosen = candidate;
                break;
            }
        }
        self.last_tuned_intensity = Some(intensity);
        ControllerDecision::deploy(
            chosen,
            self.per_experiment * experiments as f64,
            DecisionReason::Tuned,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_cloud::ResourceAllocation;
    use dejavu_services::CassandraService;
    use dejavu_traces::{RequestMix, ServiceKind, Workload};

    fn controller() -> OnlineTuning {
        OnlineTuning::new(
            Box::new(CassandraService::update_heavy()),
            AllocationSpace::scale_out(1, 10).unwrap(),
        )
    }

    fn obs(intensity: f64) -> Observation {
        Observation {
            time: SimTime::from_hours(1.0),
            workload: Workload::with_intensity(
                ServiceKind::Cassandra,
                intensity,
                RequestMix::update_heavy(),
            ),
            latency_ms: Some(40.0),
            qos_percent: None,
            utilization: 0.6,
            slo_violated: false,
            current_allocation: ResourceAllocation::large(5),
        }
    }

    #[test]
    fn retunes_on_every_workload_change_with_minutes_of_latency() {
        let mut c = controller();
        let d1 = c.decide(&obs(0.5));
        assert_eq!(d1.reason, DecisionReason::Tuned);
        assert!(
            d1.decision_latency.as_mins() >= 2.0,
            "latency {}",
            d1.decision_latency
        );
        let target = d1.target.unwrap();
        assert!(target.count() >= 5 && target.count() <= 6);
        // Same workload again: no retuning.
        let d2 = c.decide(&obs(0.51));
        assert!(d2.target.is_none());
        // A new workload level triggers another slow tuning run.
        let d3 = c.decide(&obs(0.9));
        assert_eq!(d3.reason, DecisionReason::Tuned);
        assert!(d3.decision_latency.as_mins() >= 2.0);
        assert_eq!(c.name(), "online-tuning");
        assert!(!format!("{c:?}").is_empty());
    }
}
