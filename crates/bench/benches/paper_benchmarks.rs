//! Criterion benchmarks regenerating (and timing) every table and figure of
//! the DejaVu evaluation, plus micro-benchmarks of the core data structures.
//!
//! Run with `cargo bench --workspace`. Each paper artefact is a single
//! benchmark iteration (the full experiment); the micro-benchmarks measure the
//! operations DejaVu performs on its hot path (signature collection,
//! classification, repository lookups, clustering).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);

    group.bench_function("bench_fig1_state_of_the_art", |b| {
        b.iter(|| black_box(dejavu_experiments::fig1::run(1)))
    });
    group.bench_function("bench_fig4_signature_separability", |b| {
        b.iter(|| black_box(dejavu_experiments::fig4::run(1)))
    });
    group.bench_function("bench_fig5_clustering", |b| {
        b.iter(|| black_box(dejavu_experiments::fig5::run(1)))
    });
    group.bench_function("bench_table1_feature_selection", |b| {
        b.iter(|| black_box(dejavu_experiments::table1::run(1)))
    });
    group.bench_function("bench_fig6_scaleout_messenger", |b| {
        b.iter(|| black_box(dejavu_experiments::fig6::run(1)))
    });
    group.bench_function("bench_fig7_scaleout_hotmail", |b| {
        b.iter(|| black_box(dejavu_experiments::fig7::run(1)))
    });
    group.bench_function("bench_fig8_adaptation_time", |b| {
        b.iter(|| black_box(dejavu_experiments::fig8::run(1)))
    });
    group.bench_function("bench_fig9_scaleup_hotmail", |b| {
        b.iter(|| black_box(dejavu_experiments::fig9::run(1)))
    });
    group.bench_function("bench_fig10_scaleup_messenger", |b| {
        b.iter(|| black_box(dejavu_experiments::fig10::run(1)))
    });
    group.bench_function("bench_fig11_interference", |b| {
        b.iter(|| black_box(dejavu_experiments::fig11::run(1)))
    });
    group.bench_function("bench_overhead_proxy", |b| {
        b.iter(|| black_box(dejavu_experiments::overhead::run(1)))
    });
    group.bench_function("bench_savings_summary", |b| {
        b.iter(|| black_box(dejavu_experiments::savings::run(1)))
    });
    group.bench_function("bench_ablation_classes", |b| {
        b.iter(|| black_box(dejavu_experiments::ablation::run(1)))
    });
    group.finish();
}

fn bench_core_operations(c: &mut Criterion) {
    use dejavu_core::{
        ClassifierKind, OnlineClassifier, RepositoryKey, SignatureRepository, WorkloadClusterer,
    };
    use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
    use dejavu_simcore::{SimRng, SimTime};
    use dejavu_traces::ServiceKind;

    let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
    let mut rng = SimRng::seed_from_u64(1);
    let mut signatures = Vec::new();
    for &level in &[0.2, 0.45, 0.55, 0.95] {
        let point = WorkloadPoint::new(ServiceKind::Cassandra, level, 0.05);
        for _ in 0..6 {
            signatures.push(sampler.sample(&point, &mut rng));
        }
    }
    let clustering = WorkloadClusterer::new((2, 8), 1)
        .cluster(&signatures)
        .unwrap();
    let classifier = OnlineClassifier::train(
        ClassifierKind::DecisionTree,
        &signatures,
        &clustering,
        1.8,
        0.6,
    )
    .unwrap();
    let probe = signatures[7].clone();

    let mut group = c.benchmark_group("core_operations");
    group.bench_function("signature_collection", |b| {
        let point = WorkloadPoint::new(ServiceKind::Cassandra, 0.6, 0.05);
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| black_box(sampler.sample(&point, &mut rng)))
    });
    group.bench_function("online_classification", |b| {
        b.iter(|| black_box(classifier.classify(&probe)))
    });
    group.bench_function("repository_lookup", |b| {
        let mut repo = SignatureRepository::new();
        for class in 0..8 {
            repo.insert(
                RepositoryKey::baseline(class),
                dejavu_cloud::ResourceAllocation::large(class as u32 + 1),
                SimTime::ZERO,
            );
        }
        b.iter(|| black_box(repo.lookup(RepositoryKey::baseline(3))))
    });
    group.bench_function("clustering_24_workloads", |b| {
        b.iter(|| {
            black_box(
                WorkloadClusterer::new((2, 8), 1)
                    .cluster(&signatures)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_core_operations, bench_figures);
criterion_main!(benches);
