//! The dejavu-serve wire protocol: length-prefixed frames over a byte
//! stream (TCP or Unix socket), one request frame → one response frame.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 LE] [version: u8] [opcode: u8] [payload: len-2 bytes]
//! ```
//!
//! `len` counts everything after the prefix (version + opcode + payload) and
//! is bounded by [`MAX_FRAME_LEN`]; a larger prefix is rejected as
//! [`WireError::Oversized`] *before* any allocation, so a hostile or corrupt
//! prefix cannot balloon server memory. All integers are little-endian;
//! floating-point values travel as `f64::to_bits` so a signature or
//! timestamp arrives **bit-exact** — the wire-vs-in-process differential
//! suite depends on remote runs reproducing local runs bit for bit, and a
//! decimal round-trip would quietly break that.
//!
//! # Errors
//!
//! Every malformed input maps to a typed [`WireError`] — truncated frame,
//! bad version, oversized payload, unknown opcode, short payload — never a
//! panic. The server answers a malformed frame with one
//! [`Response::Error`] frame (when the stream is still writable) and closes
//! the connection; the client surfaces the typed error to its caller.

use dejavu_cloud::{InstanceType, ResourceAllocation};
use dejavu_fleet::{PendingOp, ShardStats, SharedEntry, TenantId};
use dejavu_simcore::SimTime;
use std::io::{Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on the post-prefix frame length (16 MiB). Large enough for
/// an epoch's commit batch or a snapshot, small enough that a corrupt
/// length prefix cannot balloon allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong on the wire, typed. `Display` renders a
/// one-line diagnostic; none of these ever panic the peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame (mid-prefix or mid-body).
    Truncated {
        /// What was being read when the stream ran dry.
        context: &'static str,
    },
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The length the prefix claimed.
        len: u32,
    },
    /// The opcode byte names no known request/response.
    BadOpcode {
        /// The opcode received.
        got: u8,
    },
    /// The payload does not decode as the opcode's message.
    Malformed {
        /// What failed to decode.
        context: &'static str,
    },
    /// The server refused the session (admission control).
    Denied {
        /// The server's stated reason.
        reason: String,
    },
    /// The server answered with an error frame.
    Remote {
        /// The server's rendered error.
        message: String,
    },
    /// An underlying socket error.
    Io {
        /// The IO error kind (the error itself is not `Clone`).
        kind: std::io::ErrorKind,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated frame while reading {context}")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "bad protocol version {got} (expected {PROTOCOL_VERSION})"
                )
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME_LEN})")
            }
            WireError::BadOpcode { got } => write!(f, "unknown opcode {got}"),
            WireError::Malformed { context } => write!(f, "malformed payload: {context}"),
            WireError::Denied { reason } => write!(f, "session denied: {reason}"),
            WireError::Remote { message } => write!(f, "server error: {message}"),
            WireError::Io { kind } => write!(f, "socket error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated {
                context: "frame body",
            },
            kind => WireError::Io { kind },
        }
    }
}

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a tenant session; must be the first frame on a connection.
    Hello {
        /// The tenant this session acts for (rate accounting key).
        tenant: TenantId,
    },
    /// Hit-accounting lookup ([`lookup`](dejavu_fleet::SharedSignatureRepository::lookup)).
    Lookup {
        /// The reading tenant.
        tenant: TenantId,
        /// Namespace to resolve in.
        namespace: u64,
        /// Full-catalogue class signature.
        signature: Vec<f64>,
        /// Interference bucket.
        interference_bucket: u32,
        /// Read time (global fleet clock).
        now: SimTime,
    },
    /// Side-effect-free resolved read
    /// ([`peek_resolved`](dejavu_fleet::SharedSignatureRepository::peek_resolved)) —
    /// the tenant-view read path.
    Peek {
        /// Namespace to resolve in.
        namespace: u64,
        /// Full-catalogue class signature.
        signature: Vec<f64>,
        /// Interference bucket.
        interference_bucket: u32,
        /// Read time (global fleet clock).
        now: SimTime,
        /// Entries owned by this tenant are invisible.
        exclude_owner: Option<TenantId>,
    },
    /// Direct publish ([`insert`](dejavu_fleet::SharedSignatureRepository::insert)).
    Publish {
        /// The publishing tenant.
        tenant: TenantId,
        /// The tenant's namespace.
        namespace: u64,
        /// Full-catalogue class signature.
        signature: Vec<f64>,
        /// Interference bucket.
        interference_bucket: u32,
        /// The tuned allocation.
        allocation: ResourceAllocation,
        /// When it was tuned.
        tuned_at: SimTime,
    },
    /// Ordered epoch commit
    /// ([`apply_batch`](dejavu_fleet::SharedSignatureRepository::apply_batch)).
    CommitBatch {
        /// The buffered operations, in commit order.
        ops: Vec<PendingOp>,
    },
    /// Fleet-wide TTL sweep.
    EvictStale {
        /// Sweep time.
        now: SimTime,
    },
    /// Single-shard TTL sweep (per-shard commit frontiers).
    EvictStaleShard {
        /// The shard to sweep.
        shard: u64,
        /// Sweep time.
        now: SimTime,
    },
    /// Shard count / clock / entry count / anchor count in one round trip.
    Meta,
    /// Fleet-wide counter totals.
    Stats,
    /// Per-shard counter snapshots.
    ShardStats,
    /// The repository's full snapshot text (persistence surface).
    Snapshot,
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session accepted.
    HelloOk {
        /// The repository's (immutable) shard count, cached client-side.
        shard_count: u64,
    },
    /// Session refused (admission control).
    Denied {
        /// Why.
        reason: String,
    },
    /// Answer to [`Request::Lookup`].
    Entry(Option<SharedEntry>),
    /// Answer to [`Request::Peek`]: the entry plus its
    /// `(anchor id, anchor count, distance)` resolution witness.
    Peeked(Option<(SharedEntry, (u32, u32, f64))>),
    /// Answer to [`Request::Publish`].
    Ok,
    /// Answer to [`Request::CommitBatch`]: one applied-flag per op.
    Applied(Vec<bool>),
    /// Answer to the sweep requests: entries evicted.
    Evicted(u64),
    /// Answer to [`Request::Meta`].
    Meta {
        /// Number of shards.
        shard_count: u64,
        /// The repository clock, in seconds.
        clock_secs: f64,
        /// Total committed entries.
        len: u64,
        /// Total anchors.
        anchors: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(ShardStats),
    /// Answer to [`Request::ShardStats`].
    ShardStatsList(Vec<ShardStats>),
    /// Answer to [`Request::Snapshot`].
    Snapshot(String),
    /// The server could not serve the request (protocol violation, internal
    /// refusal). The connection closes after this frame.
    Error {
        /// Rendered diagnostic.
        message: String,
    },
}

// --- request opcodes ---
const OP_HELLO: u8 = 1;
const OP_LOOKUP: u8 = 2;
const OP_PEEK: u8 = 3;
const OP_PUBLISH: u8 = 4;
const OP_COMMIT_BATCH: u8 = 5;
const OP_EVICT_STALE: u8 = 6;
const OP_EVICT_STALE_SHARD: u8 = 7;
const OP_META: u8 = 8;
const OP_STATS: u8 = 9;
const OP_SHARD_STATS: u8 = 10;
const OP_SNAPSHOT: u8 = 11;
// --- response opcodes ---
const OP_HELLO_OK: u8 = 128;
const OP_DENIED: u8 = 129;
const OP_ENTRY: u8 = 130;
const OP_PEEKED: u8 = 131;
const OP_OK: u8 = 132;
const OP_APPLIED: u8 = 133;
const OP_EVICTED: u8 = 134;
const OP_META_R: u8 = 135;
const OP_STATS_R: u8 = 136;
const OP_SHARD_STATS_R: u8 = 137;
const OP_SNAPSHOT_R: u8 = 138;
const OP_ERROR: u8 = 255;

// --- primitive encoders ---

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_time(buf: &mut Vec<u8>, t: SimTime) {
    put_f64(buf, t.as_secs());
}

fn put_sig(buf: &mut Vec<u8>, sig: &[f64]) {
    put_u32(buf, sig.len() as u32);
    for &v in sig {
        put_f64(buf, v);
    }
}

fn put_alloc(buf: &mut Vec<u8>, a: ResourceAllocation) {
    buf.push(match a.instance_type() {
        InstanceType::Large => 0,
        InstanceType::ExtraLarge => 1,
    });
    put_u32(buf, a.count());
}

fn put_entry(buf: &mut Vec<u8>, e: &SharedEntry) {
    put_alloc(buf, e.allocation);
    put_time(buf, e.tuned_at);
    put_u64(buf, e.owner as u64);
    put_u64(buf, e.hits);
    put_u64(buf, e.cross_tenant_hits);
}

fn put_stats(buf: &mut Vec<u8>, s: &ShardStats) {
    for v in [
        s.hits,
        s.misses,
        s.insertions,
        s.evictions,
        s.cross_tenant_hits,
        s.anchors_created,
    ] {
        put_u64(buf, v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_op(buf: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Publish {
            tenant,
            namespace,
            signature,
            interference_bucket,
            allocation,
            tuned_at,
        } => {
            buf.push(0);
            put_u64(buf, *tenant as u64);
            put_u64(buf, *namespace);
            put_sig(buf, signature);
            put_u32(buf, *interference_bucket);
            put_alloc(buf, *allocation);
            put_time(buf, *tuned_at);
        }
        PendingOp::RecordHit {
            tenant,
            namespace,
            signature,
            interference_bucket,
            resolved,
        } => {
            buf.push(1);
            put_u64(buf, *tenant as u64);
            put_u64(buf, *namespace);
            put_sig(buf, signature);
            put_u32(buf, *interference_bucket);
            match resolved {
                Some((anchor, count, dist)) => {
                    buf.push(1);
                    put_u32(buf, *anchor);
                    put_u32(buf, *count);
                    put_f64(buf, *dist);
                }
                None => buf.push(0),
            }
        }
        PendingOp::RecordMiss { namespace } => {
            buf.push(2);
            put_u64(buf, *namespace);
        }
    }
}

// --- primitive decoder ---

/// A bounds-checked reader over one frame's payload. Every shortfall is a
/// typed [`WireError::Malformed`] naming what was being decoded.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(WireError::Malformed { context })?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn time(&mut self, context: &'static str) -> Result<SimTime, WireError> {
        Ok(SimTime::from_secs(self.f64(context)?))
    }

    fn sig(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.u32("signature length")? as usize;
        // Bound by the frame itself: a length prefix larger than the
        // remaining payload is malformed, not an allocation request.
        if n > (self.buf.len() - self.at) / 8 {
            return Err(WireError::Malformed {
                context: "signature length",
            });
        }
        (0..n).map(|_| self.f64("signature value")).collect()
    }

    fn alloc(&mut self) -> Result<ResourceAllocation, WireError> {
        let ty = match self.u8("instance type")? {
            0 => InstanceType::Large,
            1 => InstanceType::ExtraLarge,
            _ => {
                return Err(WireError::Malformed {
                    context: "instance type",
                })
            }
        };
        let count = self.u32("instance count")?;
        ResourceAllocation::new(ty, count).map_err(|_| WireError::Malformed {
            context: "instance count",
        })
    }

    fn entry(&mut self) -> Result<SharedEntry, WireError> {
        Ok(SharedEntry {
            allocation: self.alloc()?,
            tuned_at: self.time("tuned_at")?,
            owner: self.u64("owner")? as TenantId,
            hits: self.u64("hits")?,
            cross_tenant_hits: self.u64("cross_tenant_hits")?,
        })
    }

    fn stats(&mut self) -> Result<ShardStats, WireError> {
        Ok(ShardStats {
            hits: self.u64("stats.hits")?,
            misses: self.u64("stats.misses")?,
            insertions: self.u64("stats.insertions")?,
            evictions: self.u64("stats.evictions")?,
            cross_tenant_hits: self.u64("stats.cross_tenant_hits")?,
            anchors_created: self.u64("stats.anchors_created")?,
        })
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32("string length")? as usize;
        let bytes = self.take(n, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            context: "string utf-8",
        })
    }

    fn op(&mut self) -> Result<PendingOp, WireError> {
        match self.u8("op tag")? {
            0 => Ok(PendingOp::Publish {
                tenant: self.u64("op tenant")? as TenantId,
                namespace: self.u64("op namespace")?,
                signature: self.sig()?,
                interference_bucket: self.u32("op bucket")?,
                allocation: self.alloc()?,
                tuned_at: self.time("op tuned_at")?,
            }),
            1 => Ok(PendingOp::RecordHit {
                tenant: self.u64("op tenant")? as TenantId,
                namespace: self.u64("op namespace")?,
                signature: self.sig()?,
                interference_bucket: self.u32("op bucket")?,
                resolved: match self.u8("op resolved tag")? {
                    0 => None,
                    1 => Some((
                        self.u32("op anchor")?,
                        self.u32("op anchor count")?,
                        self.f64("op distance")?,
                    )),
                    _ => {
                        return Err(WireError::Malformed {
                            context: "op resolved tag",
                        })
                    }
                },
            }),
            2 => Ok(PendingOp::RecordMiss {
                namespace: self.u64("op namespace")?,
            }),
            _ => Err(WireError::Malformed { context: "op tag" }),
        }
    }

    fn done(self, context: &'static str) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed { context })
        }
    }
}

impl Request {
    /// Serializes into a frame body (version + opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Request::Hello { tenant } => {
                buf.push(OP_HELLO);
                put_u64(&mut buf, *tenant as u64);
            }
            Request::Lookup {
                tenant,
                namespace,
                signature,
                interference_bucket,
                now,
            } => {
                buf.push(OP_LOOKUP);
                put_u64(&mut buf, *tenant as u64);
                put_u64(&mut buf, *namespace);
                put_sig(&mut buf, signature);
                put_u32(&mut buf, *interference_bucket);
                put_time(&mut buf, *now);
            }
            Request::Peek {
                namespace,
                signature,
                interference_bucket,
                now,
                exclude_owner,
            } => {
                buf.push(OP_PEEK);
                put_u64(&mut buf, *namespace);
                put_sig(&mut buf, signature);
                put_u32(&mut buf, *interference_bucket);
                put_time(&mut buf, *now);
                match exclude_owner {
                    Some(t) => {
                        buf.push(1);
                        put_u64(&mut buf, *t as u64);
                    }
                    None => buf.push(0),
                }
            }
            Request::Publish {
                tenant,
                namespace,
                signature,
                interference_bucket,
                allocation,
                tuned_at,
            } => {
                buf.push(OP_PUBLISH);
                put_u64(&mut buf, *tenant as u64);
                put_u64(&mut buf, *namespace);
                put_sig(&mut buf, signature);
                put_u32(&mut buf, *interference_bucket);
                put_alloc(&mut buf, *allocation);
                put_time(&mut buf, *tuned_at);
            }
            Request::CommitBatch { ops } => {
                buf.push(OP_COMMIT_BATCH);
                put_u32(&mut buf, ops.len() as u32);
                for op in ops {
                    put_op(&mut buf, op);
                }
            }
            Request::EvictStale { now } => {
                buf.push(OP_EVICT_STALE);
                put_time(&mut buf, *now);
            }
            Request::EvictStaleShard { shard, now } => {
                buf.push(OP_EVICT_STALE_SHARD);
                put_u64(&mut buf, *shard);
                put_time(&mut buf, *now);
            }
            Request::Meta => buf.push(OP_META),
            Request::Stats => buf.push(OP_STATS),
            Request::ShardStats => buf.push(OP_SHARD_STATS),
            Request::Snapshot => buf.push(OP_SNAPSHOT),
        }
        buf
    }

    /// Decodes a frame body. Typed errors, never a panic.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let (version, opcode, payload) = split_body(body)?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::BadVersion { got: version });
        }
        let mut c = Cursor::new(payload);
        let req = match opcode {
            OP_HELLO => Request::Hello {
                tenant: c.u64("hello tenant")? as TenantId,
            },
            OP_LOOKUP => Request::Lookup {
                tenant: c.u64("lookup tenant")? as TenantId,
                namespace: c.u64("lookup namespace")?,
                signature: c.sig()?,
                interference_bucket: c.u32("lookup bucket")?,
                now: c.time("lookup now")?,
            },
            OP_PEEK => Request::Peek {
                namespace: c.u64("peek namespace")?,
                signature: c.sig()?,
                interference_bucket: c.u32("peek bucket")?,
                now: c.time("peek now")?,
                exclude_owner: match c.u8("peek exclude tag")? {
                    0 => None,
                    1 => Some(c.u64("peek exclude owner")? as TenantId),
                    _ => {
                        return Err(WireError::Malformed {
                            context: "peek exclude tag",
                        })
                    }
                },
            },
            OP_PUBLISH => Request::Publish {
                tenant: c.u64("publish tenant")? as TenantId,
                namespace: c.u64("publish namespace")?,
                signature: c.sig()?,
                interference_bucket: c.u32("publish bucket")?,
                allocation: c.alloc()?,
                tuned_at: c.time("publish tuned_at")?,
            },
            OP_COMMIT_BATCH => {
                let n = c.u32("batch length")? as usize;
                let mut ops = Vec::new();
                for _ in 0..n {
                    ops.push(c.op()?);
                }
                Request::CommitBatch { ops }
            }
            OP_EVICT_STALE => Request::EvictStale {
                now: c.time("evict now")?,
            },
            OP_EVICT_STALE_SHARD => Request::EvictStaleShard {
                shard: c.u64("evict shard")?,
                now: c.time("evict now")?,
            },
            OP_META => Request::Meta,
            OP_STATS => Request::Stats,
            OP_SHARD_STATS => Request::ShardStats,
            OP_SNAPSHOT => Request::Snapshot,
            got => return Err(WireError::BadOpcode { got }),
        };
        c.done("trailing request bytes")?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame body (version + opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![PROTOCOL_VERSION];
        match self {
            Response::HelloOk { shard_count } => {
                buf.push(OP_HELLO_OK);
                put_u64(&mut buf, *shard_count);
            }
            Response::Denied { reason } => {
                buf.push(OP_DENIED);
                put_str(&mut buf, reason);
            }
            Response::Entry(entry) => {
                buf.push(OP_ENTRY);
                match entry {
                    Some(e) => {
                        buf.push(1);
                        put_entry(&mut buf, e);
                    }
                    None => buf.push(0),
                }
            }
            Response::Peeked(result) => {
                buf.push(OP_PEEKED);
                match result {
                    Some((e, (anchor, count, dist))) => {
                        buf.push(1);
                        put_entry(&mut buf, e);
                        put_u32(&mut buf, *anchor);
                        put_u32(&mut buf, *count);
                        put_f64(&mut buf, *dist);
                    }
                    None => buf.push(0),
                }
            }
            Response::Ok => buf.push(OP_OK),
            Response::Applied(flags) => {
                buf.push(OP_APPLIED);
                put_u32(&mut buf, flags.len() as u32);
                buf.extend(flags.iter().map(|&b| b as u8));
            }
            Response::Evicted(n) => {
                buf.push(OP_EVICTED);
                put_u64(&mut buf, *n);
            }
            Response::Meta {
                shard_count,
                clock_secs,
                len,
                anchors,
            } => {
                buf.push(OP_META_R);
                put_u64(&mut buf, *shard_count);
                put_f64(&mut buf, *clock_secs);
                put_u64(&mut buf, *len);
                put_u64(&mut buf, *anchors);
            }
            Response::Stats(s) => {
                buf.push(OP_STATS_R);
                put_stats(&mut buf, s);
            }
            Response::ShardStatsList(list) => {
                buf.push(OP_SHARD_STATS_R);
                put_u32(&mut buf, list.len() as u32);
                for s in list {
                    put_stats(&mut buf, s);
                }
            }
            Response::Snapshot(text) => {
                buf.push(OP_SNAPSHOT_R);
                put_str(&mut buf, text);
            }
            Response::Error { message } => {
                buf.push(OP_ERROR);
                put_str(&mut buf, message);
            }
        }
        buf
    }

    /// Decodes a frame body. Typed errors, never a panic.
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let (version, opcode, payload) = split_body(body)?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::BadVersion { got: version });
        }
        let mut c = Cursor::new(payload);
        let resp = match opcode {
            OP_HELLO_OK => Response::HelloOk {
                shard_count: c.u64("hello shard count")?,
            },
            OP_DENIED => Response::Denied {
                reason: c.string()?,
            },
            OP_ENTRY => Response::Entry(match c.u8("entry tag")? {
                0 => None,
                1 => Some(c.entry()?),
                _ => {
                    return Err(WireError::Malformed {
                        context: "entry tag",
                    })
                }
            }),
            OP_PEEKED => Response::Peeked(match c.u8("peeked tag")? {
                0 => None,
                1 => {
                    let entry = c.entry()?;
                    let anchor = c.u32("peeked anchor")?;
                    let count = c.u32("peeked anchor count")?;
                    let dist = c.f64("peeked distance")?;
                    Some((entry, (anchor, count, dist)))
                }
                _ => {
                    return Err(WireError::Malformed {
                        context: "peeked tag",
                    })
                }
            }),
            OP_OK => Response::Ok,
            OP_APPLIED => {
                let n = c.u32("applied length")? as usize;
                let bytes = c.take(n, "applied flags")?;
                Response::Applied(bytes.iter().map(|&b| b != 0).collect())
            }
            OP_EVICTED => Response::Evicted(c.u64("evicted count")?),
            OP_META_R => Response::Meta {
                shard_count: c.u64("meta shard count")?,
                clock_secs: c.f64("meta clock")?,
                len: c.u64("meta len")?,
                anchors: c.u64("meta anchors")?,
            },
            OP_STATS_R => Response::Stats(c.stats()?),
            OP_SHARD_STATS_R => {
                let n = c.u32("shard stats length")? as usize;
                let mut list = Vec::new();
                for _ in 0..n {
                    list.push(c.stats()?);
                }
                Response::ShardStatsList(list)
            }
            OP_SNAPSHOT_R => Response::Snapshot(c.string()?),
            OP_ERROR => Response::Error {
                message: c.string()?,
            },
            got => return Err(WireError::BadOpcode { got }),
        };
        c.done("trailing response bytes")?;
        Ok(resp)
    }
}

fn split_body(body: &[u8]) -> Result<(u8, u8, &[u8]), WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated {
            context: "frame header",
        });
    }
    Ok((body[0], body[1], &body[2..]))
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), WireError> {
    let len = body.len() as u32;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean end of
/// stream (the peer closed between frames); a stream that dies mid-frame is
/// [`WireError::Truncated`], a length prefix over [`MAX_FRAME_LEN`] is
/// [`WireError::Oversized`] — checked before any allocation.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    context: "length prefix",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => WireError::Truncated {
            context: "frame body",
        },
        kind => WireError::Io { kind },
    })?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).expect("decodes"), req);
    }

    fn round_trip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).expect("decodes"), resp);
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        round_trip_request(Request::Hello { tenant: 7 });
        round_trip_request(Request::Lookup {
            tenant: 3,
            namespace: 11,
            signature: vec![1.5, -0.0, f64::MIN_POSITIVE, 1e300],
            interference_bucket: 2,
            now: SimTime::from_secs(3600.25),
        });
        round_trip_request(Request::Peek {
            namespace: 11,
            signature: vec![0.1 + 0.2],
            interference_bucket: 0,
            now: SimTime::ZERO,
            exclude_owner: Some(9),
        });
        round_trip_request(Request::Publish {
            tenant: 1,
            namespace: 2,
            signature: vec![10.0, 20.0],
            interference_bucket: 1,
            allocation: ResourceAllocation::extra_large(6),
            tuned_at: SimTime::from_secs(900.0),
        });
        round_trip_request(Request::CommitBatch {
            ops: vec![
                PendingOp::Publish {
                    tenant: 0,
                    namespace: 1,
                    signature: vec![5.0],
                    interference_bucket: 0,
                    allocation: ResourceAllocation::large(4),
                    tuned_at: SimTime::from_secs(10.0),
                },
                PendingOp::RecordHit {
                    tenant: 1,
                    namespace: 1,
                    signature: vec![5.0],
                    interference_bucket: 0,
                    resolved: Some((0, 1, 0.0123456789)),
                },
                PendingOp::RecordMiss { namespace: 2 },
            ],
        });
        round_trip_request(Request::EvictStale {
            now: SimTime::from_secs(7200.0),
        });
        round_trip_request(Request::EvictStaleShard {
            shard: 5,
            now: SimTime::from_secs(7200.0),
        });
        round_trip_request(Request::Meta);
        round_trip_request(Request::Stats);
        round_trip_request(Request::ShardStats);
        round_trip_request(Request::Snapshot);
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        round_trip_response(Response::HelloOk { shard_count: 16 });
        round_trip_response(Response::Denied {
            reason: "at capacity".into(),
        });
        round_trip_response(Response::Entry(Some(SharedEntry {
            allocation: ResourceAllocation::large(3),
            tuned_at: SimTime::from_secs(123.456),
            owner: 42,
            hits: 17,
            cross_tenant_hits: 5,
        })));
        round_trip_response(Response::Entry(None));
        round_trip_response(Response::Peeked(Some((
            SharedEntry {
                allocation: ResourceAllocation::extra_large(1),
                tuned_at: SimTime::ZERO,
                owner: 0,
                hits: 0,
                cross_tenant_hits: 0,
            },
            (3, 9, 0.07500000000000001),
        ))));
        round_trip_response(Response::Peeked(None));
        round_trip_response(Response::Ok);
        round_trip_response(Response::Applied(vec![true, false, true]));
        round_trip_response(Response::Evicted(99));
        round_trip_response(Response::Meta {
            shard_count: 16,
            clock_secs: 86400.5,
            len: 1000,
            anchors: 128,
        });
        round_trip_response(Response::Stats(ShardStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            cross_tenant_hits: 5,
            anchors_created: 6,
        }));
        round_trip_response(Response::ShardStatsList(vec![ShardStats::default(); 3]));
        round_trip_response(Response::Snapshot("{\"v\":1}".into()));
        round_trip_response(Response::Error {
            message: "bad".into(),
        });
    }

    #[test]
    fn truncated_frames_decode_to_typed_errors() {
        // Empty and one-byte bodies lack even the header.
        assert_eq!(
            Request::decode(&[]),
            Err(WireError::Truncated {
                context: "frame header"
            })
        );
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION]),
            Err(WireError::Truncated {
                context: "frame header"
            })
        );
        // A valid header with a short payload is malformed, not a panic.
        let mut body = Request::Lookup {
            tenant: 3,
            namespace: 11,
            signature: vec![1.0, 2.0],
            interference_bucket: 2,
            now: SimTime::ZERO,
        }
        .encode();
        body.truncate(body.len() - 3);
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_version_and_opcode_are_typed_errors() {
        assert_eq!(
            Request::decode(&[9, OP_META]),
            Err(WireError::BadVersion { got: 9 })
        );
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, 200]),
            Err(WireError::BadOpcode { got: 200 })
        );
        assert_eq!(
            Response::decode(&[PROTOCOL_VERSION, 7]),
            Err(WireError::BadOpcode { got: 7 })
        );
    }

    #[test]
    fn oversized_and_truncated_streams_are_typed_errors() {
        // Prefix claims more than MAX_FRAME_LEN: rejected before allocation.
        let prefix = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut stream: &[u8] = &prefix;
        assert_eq!(
            read_frame(&mut stream),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
        // Stream dies inside the prefix.
        let mut stream: &[u8] = &[1, 0];
        assert_eq!(
            read_frame(&mut stream),
            Err(WireError::Truncated {
                context: "length prefix"
            })
        );
        // Stream dies inside the body.
        let mut framed = Vec::new();
        write_frame(&mut framed, &Request::Meta.encode()).expect("frame");
        framed.truncate(framed.len() - 1);
        let mut stream: &[u8] = &framed;
        assert_eq!(
            read_frame(&mut stream),
            Err(WireError::Truncated {
                context: "frame body"
            })
        );
        // Clean end-of-stream between frames is not an error.
        let mut stream: &[u8] = &[];
        assert_eq!(read_frame(&mut stream), Ok(None));
    }

    #[test]
    fn hostile_signature_lengths_cannot_balloon_allocation() {
        // A signature length prefix far beyond the payload is malformed.
        let mut body = vec![PROTOCOL_VERSION, OP_PEEK];
        body.extend_from_slice(&11u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Meta.encode();
        body.push(0);
        assert_eq!(
            Request::decode(&body),
            Err(WireError::Malformed {
                context: "trailing request bytes"
            })
        );
    }
}
