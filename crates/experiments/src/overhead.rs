//! §4.4 — DejaVu's overhead: the proxy adds ≈3 ms to production requests and
//! duplicating one instance's inbound traffic is a negligible fraction of the
//! service's total network traffic.

use crate::report::Report;
use dejavu_proxy::{NetworkOverhead, ProxyConfig, RequestDuplicator};
use dejavu_services::service::EvalContext;
use dejavu_services::{RubisService, ServiceModel};
use dejavu_simcore::SimTime;

/// One row of the proxy-overhead study.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Number of emulated clients.
    pub clients: u32,
    /// Latency without the proxy (ms).
    pub latency_without_ms: f64,
    /// Latency with continuous profiling through the proxy (ms).
    pub latency_with_ms: f64,
}

/// The overhead result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// Latency rows for 100–500 clients.
    pub rows: Vec<OverheadRow>,
    /// Mean latency added by the proxy (ms).
    pub mean_added_ms: f64,
    /// Fraction of total network traffic added by duplication (100 instances,
    /// 1:10 inbound/outbound).
    pub network_fraction: f64,
}

impl OverheadResult {
    /// Renders the study.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Section 4.4: proxy and network overhead");
        for row in &self.rows {
            r.kv(
                &format!("{} clients", row.clients),
                format!(
                    "{:.1} ms -> {:.1} ms",
                    row.latency_without_ms, row.latency_with_ms
                ),
            );
        }
        r.kv(
            "mean latency added (ms)",
            format!("{:.1}", self.mean_added_ms),
        );
        r.kv(
            "network overhead (100 instances)",
            format!("{:.3}%", self.network_fraction * 100.0),
        );
        r
    }
}

/// Runs the overhead study.
pub fn run(_seed: u64) -> OverheadResult {
    let service = RubisService::default_browsing();
    let proxy = RequestDuplicator::new(ProxyConfig::default());
    let peak_clients = 1_000.0;
    let rows: Vec<OverheadRow> = [100u32, 200, 300, 400, 500]
        .iter()
        .map(|&clients| {
            let intensity = clients as f64 / peak_clients;
            let base = service
                .evaluate(intensity, &EvalContext::steady(SimTime::ZERO, 6.0))
                .latency_ms;
            OverheadRow {
                clients,
                latency_without_ms: base,
                latency_with_ms: base + proxy.production_overhead_ms(),
            }
        })
        .collect();
    let mean_added_ms = rows
        .iter()
        .map(|r| r.latency_with_ms - r.latency_without_ms)
        .sum::<f64>()
        / rows.len() as f64;
    OverheadResult {
        rows,
        mean_added_ms,
        network_fraction: NetworkOverhead::paper_example().total_traffic_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_magnitudes() {
        let o = run(1);
        assert_eq!(o.rows.len(), 5);
        assert!(
            (o.mean_added_ms - 3.0).abs() < 0.5,
            "added {}",
            o.mean_added_ms
        );
        assert!(o.network_fraction < 0.002, "network {}", o.network_fraction);
        assert!(o.report().to_string().contains("proxy"));
    }
}
