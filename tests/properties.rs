//! Property-based tests over the core invariants, spanning crates.

use dejavu::cloud::{AllocationSpace, CostMeter, ResourceAllocation};
use dejavu::metrics::WorkloadSignature;
use dejavu::ml::kmeans::{KMeans, KMeansConfig};
use dejavu::ml::Dataset;
use dejavu::services::{CassandraService, ServiceModel};
use dejavu::services::service::EvalContext;
use dejavu::simcore::{SimDuration, SimTime};
use dejavu::traces::LoadTrace;
use proptest::prelude::*;

proptest! {
    /// Signature normalization makes signatures invariant to how long the
    /// profiler sampled.
    #[test]
    fn signature_is_sampling_duration_invariant(
        values in proptest::collection::vec(0.0f64..10_000.0, 1..20),
        short in 1.0f64..100.0,
        factor in 1.1f64..50.0,
    ) {
        let names: Vec<String> = (0..values.len()).map(|i| format!("m{i}")).collect();
        let long_values: Vec<f64> = values.iter().map(|v| v * factor).collect();
        let a = WorkloadSignature::from_raw(names.clone(), values, SimDuration::from_secs(short));
        let b = WorkloadSignature::from_raw(names, long_values, SimDuration::from_secs(short * factor));
        prop_assert!(a.distance(&b) < 1e-6 * (1.0 + a.values().iter().sum::<f64>().abs()));
    }

    /// The queueing model is monotone: more load never reduces latency, more
    /// capacity never increases it.
    #[test]
    fn latency_is_monotone(
        load_a in 0.05f64..1.2,
        load_b in 0.05f64..1.2,
        cap_a in 1.0f64..12.0,
        cap_b in 1.0f64..12.0,
    ) {
        let svc = CassandraService::update_heavy();
        let ctx = |cap| EvalContext::steady(SimTime::ZERO, cap);
        let (lo_load, hi_load) = if load_a <= load_b { (load_a, load_b) } else { (load_b, load_a) };
        let (lo_cap, hi_cap) = if cap_a <= cap_b { (cap_a, cap_b) } else { (cap_b, cap_a) };
        prop_assert!(svc.evaluate(hi_load, &ctx(5.0)).latency_ms >= svc.evaluate(lo_load, &ctx(5.0)).latency_ms - 1e-9);
        prop_assert!(svc.evaluate(0.7, &ctx(lo_cap)).latency_ms >= svc.evaluate(0.7, &ctx(hi_cap)).latency_ms - 1e-9);
    }

    /// Cost metering is additive over adjacent time windows.
    #[test]
    fn cost_meter_is_additive(
        counts in proptest::collection::vec(1u32..10, 1..8),
        split in 0.1f64..0.9,
    ) {
        let mut meter = CostMeter::new();
        for (i, &c) in counts.iter().enumerate() {
            meter.record(SimTime::from_hours(i as f64), ResourceAllocation::large(c));
        }
        let end = SimTime::from_hours(counts.len() as f64);
        let mid = SimTime::from_hours(counts.len() as f64 * split);
        let total = meter.cost_between(SimTime::ZERO, end);
        let parts = meter.cost_between(SimTime::ZERO, mid) + meter.cost_between(mid, end);
        prop_assert!((total - parts).abs() < 1e-9);
        prop_assert!(total >= 0.0);
    }

    /// The allocation space's cheapest_with_capacity always returns an
    /// allocation that actually provides the requested capacity (or the
    /// maximum available).
    #[test]
    fn cheapest_with_capacity_is_sufficient(capacity in 0.0f64..15.0) {
        let space = AllocationSpace::scale_out(1, 10).unwrap();
        let chosen = space.cheapest_with_capacity(capacity);
        if capacity <= 10.0 {
            prop_assert!(chosen.capacity_units() >= capacity - 1e-9);
        } else {
            prop_assert_eq!(chosen, space.full_capacity());
        }
    }

    /// k-means assignments always point at the nearest centroid.
    #[test]
    fn kmeans_assignments_are_nearest(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 8..40),
        k in 2usize..5,
    ) {
        let mut data = Dataset::new(vec!["x".into(), "y".into()]);
        for (x, y) in &points {
            data.push_unlabeled(vec![*x, *y]);
        }
        let k = k.min(points.len());
        let model = KMeans::fit(&data, &KMeansConfig { k, ..Default::default() }, 7).unwrap();
        for (i, inst) in data.instances().iter().enumerate() {
            let assigned = model.assignments()[i];
            let d_assigned = dejavu::ml::dataset::distance(&inst.features, &model.centroids()[assigned]);
            for c in model.centroids() {
                prop_assert!(d_assigned <= dejavu::ml::dataset::distance(&inst.features, c) + 1e-9);
            }
        }
    }

    /// Load traces never produce levels outside the valid range, under any
    /// rescaling.
    #[test]
    fn trace_rescaling_stays_in_range(
        levels in proptest::collection::vec(0.0f64..1.0, 1..48),
        new_peak in 0.05f64..1.5,
    ) {
        let trace = LoadTrace::hourly("prop", levels).unwrap();
        let rescaled = trace.rescaled_to_peak(new_peak);
        prop_assert!(rescaled.levels().iter().all(|&l| (0.0..=1.5).contains(&l)));
        prop_assert!((rescaled.peak() - new_peak).abs() < 1e-9);
    }
}
