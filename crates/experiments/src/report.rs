//! Plain-text rendering helpers shared by the experiment binaries and benches.

use dejavu_simcore::TimeSeries;
use std::fmt::Write as _;

/// A simple text report builder.
#[derive(Debug, Clone, Default)]
pub struct Report {
    text: String,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: &str) -> Self {
        let mut r = Report {
            text: String::new(),
        };
        r.heading(title);
        r
    }

    /// Adds a heading line.
    pub fn heading(&mut self, title: &str) {
        let _ = writeln!(self.text, "== {title} ==");
    }

    /// Adds a `key: value` line.
    pub fn kv(&mut self, key: &str, value: impl std::fmt::Display) {
        let _ = writeln!(self.text, "  {key:<42} {value}");
    }

    /// Adds a raw line.
    pub fn line(&mut self, line: impl std::fmt::Display) {
        let _ = writeln!(self.text, "{line}");
    }

    /// Adds an hourly summary of a time series as a compact row of numbers.
    pub fn hourly(&mut self, label: &str, series: &TimeSeries, hours: usize) {
        let means = series.hourly_means(hours);
        let rendered: Vec<String> = means.iter().map(|v| format!("{v:.1}")).collect();
        let _ = writeln!(self.text, "  {label:<14} {}", rendered.join(" "));
    }

    /// The rendered report.
    pub fn into_text(self) -> String {
        self.text
    }

    /// The rendered report (borrowed).
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;

    #[test]
    fn report_renders_sections_and_values() {
        let mut r = Report::new("demo");
        r.kv("savings", pct(0.55));
        let mut s = TimeSeries::new("x");
        s.push(SimTime::ZERO, 1.0);
        s.push(SimTime::from_hours(1.0), 3.0);
        r.hourly("series", &s, 2);
        let text = r.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("55.0%"));
        assert!(text.contains("series"));
        assert!(!Report::default().into_text().contains("=="));
    }
}
