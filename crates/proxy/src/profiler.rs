//! The profiling environment: a clone VM that serves the duplicated requests
//! in isolation and collects workload signatures.

use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint, WorkloadSignature};
use dejavu_services::service::EvalContext;
use dejavu_services::{PerfSample, ServiceModel};
use dejavu_simcore::{SimDuration, SimRng, SimTime};
use dejavu_traces::Workload;
use serde::{Deserialize, Serialize};

/// Profiler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// How the profiler samples metrics (window length, register count, …).
    pub sampler: SamplerConfig,
    /// Capacity units of the dedicated profiling machine hosting the clone.
    /// A single profiling server hosts one clone instance, so this is the
    /// capacity of one instance.
    pub clone_capacity_units: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sampler: SamplerConfig::default(),
            clone_capacity_units: 1.0,
        }
    }
}

/// What one profiling run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilingReport {
    /// The collected workload signature (normalized by sampling time).
    pub signature: WorkloadSignature,
    /// How long the profiling run took — this is the dominant part of
    /// DejaVu's ~10 s adaptation time.
    pub duration: SimDuration,
    /// The per-instance share of the workload the clone observed.
    pub observed_point: WorkloadPoint,
}

/// The DejaVu profiler: collects signatures on an isolated clone VM.
///
/// # Example
///
/// ```
/// use dejavu_proxy::{Profiler, ProfilerConfig};
/// use dejavu_simcore::SimRng;
/// use dejavu_traces::{RequestMix, ServiceKind, Workload};
///
/// let profiler = Profiler::new(ProfilerConfig::default());
/// let mut rng = SimRng::seed_from_u64(1);
/// let workload = Workload::with_intensity(ServiceKind::Cassandra, 0.6, RequestMix::update_heavy());
/// let report = profiler.profile(&workload, &mut rng);
/// assert!(!report.signature.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    config: ProfilerConfig,
    sampler: MetricSampler,
}

impl Profiler {
    /// Creates a profiler with the standard metric catalogue.
    ///
    /// # Panics
    ///
    /// Panics if the clone capacity is not positive.
    pub fn new(config: ProfilerConfig) -> Self {
        assert!(
            config.clone_capacity_units > 0.0,
            "clone capacity must be positive"
        );
        let sampler = MetricSampler::new(MetricModel::default(), config.sampler.clone());
        Profiler { config, sampler }
    }

    /// The profiler configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// The metric sampler (useful to inspect the catalogue).
    pub fn sampler(&self) -> &MetricSampler {
        &self.sampler
    }

    /// How long one profiling run takes.
    pub fn profiling_duration(&self) -> SimDuration {
        self.config.sampler.window
    }

    /// Profiles the workload: the clone serves the duplicated requests of one
    /// service instance, in isolation, and the signature is collected over the
    /// configured window.
    pub fn profile(&self, workload: &Workload, rng: &mut SimRng) -> ProfilingReport {
        let point = WorkloadPoint::from(workload);
        ProfilingReport {
            signature: self.sampler.sample(&point, rng),
            duration: self.profiling_duration(),
            observed_point: point,
        }
    }

    /// Evaluates how the service would perform on `capacity_units` in the
    /// isolated profiling environment (no co-located tenants). DejaVu uses
    /// this as `PerformanceLevel_isolation` in the interference index.
    pub fn evaluate_isolated<S: ServiceModel + ?Sized>(
        &self,
        service: &S,
        workload: &Workload,
        capacity_units: f64,
    ) -> PerfSample {
        service.evaluate(
            workload.intensity.value(),
            &EvalContext::steady(SimTime::ZERO, capacity_units),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_services::CassandraService;
    use dejavu_traces::{RequestMix, ServiceKind};

    fn workload(intensity: f64) -> Workload {
        Workload::with_intensity(
            ServiceKind::Cassandra,
            intensity,
            RequestMix::update_heavy(),
        )
    }

    #[test]
    fn profiling_produces_a_full_signature_in_about_ten_seconds() {
        let p = Profiler::new(ProfilerConfig::default());
        let mut rng = SimRng::seed_from_u64(1);
        let report = p.profile(&workload(0.5), &mut rng);
        assert_eq!(report.signature.len(), p.sampler().model().catalog().len());
        assert!((report.duration.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(report.observed_point.intensity, 0.5);
    }

    #[test]
    fn different_workloads_produce_distinguishable_signatures() {
        let p = Profiler::new(ProfilerConfig::default());
        let mut rng = SimRng::seed_from_u64(2);
        let low = p.profile(&workload(0.2), &mut rng);
        let low2 = p.profile(&workload(0.2), &mut rng);
        let high = p.profile(&workload(0.9), &mut rng);
        assert!(
            low.signature.distance(&high.signature) > 5.0 * low.signature.distance(&low2.signature)
        );
    }

    #[test]
    fn isolated_evaluation_ignores_interference() {
        let p = Profiler::new(ProfilerConfig::default());
        let svc = CassandraService::update_heavy();
        let sample = p.evaluate_isolated(&svc, &workload(0.5), 6.0);
        assert!(svc.slo().is_met(&sample));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_clone_rejected() {
        let _ = Profiler::new(ProfilerConfig {
            clone_capacity_units: 0.0,
            ..Default::default()
        });
    }
}
