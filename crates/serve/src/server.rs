//! The dejavu-serve daemon: hosts one [`SharedSignatureRepository`] behind
//! the wire protocol, over TCP or a Unix socket.
//!
//! One OS thread per connection — the repository's read path is wait-free,
//! so concurrent sessions scale with cores rather than serializing on a
//! shard lock, and a thread blocked in `read` costs nothing. Each
//! connection must open with [`Request::Hello`]; admission control caps
//! live sessions at [`ServeConfig::max_sessions`] and refuses the rest with
//! a [`Response::Denied`] frame instead of a hang. Per-tenant usage
//! (operations, bytes in, bytes out) is accounted on lock-free
//! [`Counter`]s and readable at any time through
//! [`ServerHandle::usage`].
//!
//! Protocol violations never panic the server: a malformed frame gets one
//! [`Response::Error`] reply (when the stream still accepts writes) and the
//! connection closes.

use crate::protocol::{read_frame, write_frame, Request, Response, WireError};
use dejavu_fleet::{SharedSignatureRepository, TenantId};
use dejavu_obs::Counter;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently admitted sessions; further `Hello`s are denied.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_sessions: 64 }
    }
}

/// Lock-free per-tenant usage counters, shared between the accounting map
/// and the connection thread that bumps them.
#[derive(Debug, Default)]
struct TenantUsage {
    ops: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
}

/// A point-in-time copy of one tenant's usage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageSnapshot {
    /// Requests served for the tenant.
    pub ops: u64,
    /// Request bytes received (frame bodies).
    pub bytes_in: u64,
    /// Response bytes sent (frame bodies).
    pub bytes_out: u64,
}

/// State shared by the accept loop, every connection thread, and the
/// handle the caller keeps.
#[derive(Debug)]
struct Shared {
    repo: Arc<SharedSignatureRepository>,
    config: ServeConfig,
    shutdown: AtomicBool,
    active_sessions: AtomicUsize,
    denied_sessions: Counter,
    usage: Mutex<BTreeMap<TenantId, Arc<TenantUsage>>>,
}

impl Shared {
    fn usage_for(&self, tenant: TenantId) -> Arc<TenantUsage> {
        let mut map = self.usage.lock().expect("usage map poisoned");
        Arc::clone(map.entry(tenant).or_default())
    }
}

/// Where a running server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7117`.
    Tcp(std::net::SocketAddr),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A running dejavu-serve instance. Dropping the handle without calling
/// [`stop`](Self::stop) leaves the accept thread running for the process
/// lifetime; call `stop` for a clean join.
#[derive(Debug)]
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound endpoint (with the OS-assigned port when bound to port 0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The TCP address, if serving over TCP.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self.endpoint {
            Endpoint::Tcp(addr) => Some(addr),
            #[cfg(unix)]
            Endpoint::Unix(_) => None,
        }
    }

    /// The served repository.
    pub fn repository(&self) -> &Arc<SharedSignatureRepository> {
        &self.shared.repo
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Acquire)
    }

    /// Sessions refused by admission control since start.
    pub fn denied_sessions(&self) -> u64 {
        self.shared.denied_sessions.get()
    }

    /// Point-in-time per-tenant usage, ordered by tenant id.
    pub fn usage(&self) -> Vec<(TenantId, UsageSnapshot)> {
        let map = self.shared.usage.lock().expect("usage map poisoned");
        map.iter()
            .map(|(&tenant, u)| {
                (
                    tenant,
                    UsageSnapshot {
                        ops: u.ops.get(),
                        bytes_in: u.bytes_in.get(),
                        bytes_out: u.bytes_out.get(),
                    },
                )
            })
            .collect()
    }

    /// Stops accepting connections and joins the accept thread. Admitted
    /// sessions stay live until their clients disconnect.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection; if the connect
        // fails the listener is already gone, which is just as final.
        match &self.endpoint {
            Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
            #[cfg(unix)]
            Endpoint::Unix(path) => drop(std::os::unix::net::UnixStream::connect(path)),
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Serves `repo` on a TCP address. Bind to port 0 to let the OS pick; the
/// chosen address is on the returned handle.
pub fn serve_tcp(
    repo: Arc<SharedSignatureRepository>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let endpoint = Endpoint::Tcp(listener.local_addr()?);
    let shared = Arc::new(Shared {
        repo,
        config,
        shutdown: AtomicBool::new(false),
        active_sessions: AtomicUsize::new(0),
        denied_sessions: Counter::default(),
        usage: Mutex::new(BTreeMap::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("dejavu-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                spawn_session(Arc::clone(&accept_shared), stream);
            }
        })?;
    Ok(ServerHandle {
        endpoint,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Serves `repo` on a Unix domain socket path; the path is removed on
/// [`ServerHandle::stop`].
#[cfg(unix)]
pub fn serve_unix(
    repo: Arc<SharedSignatureRepository>,
    path: &std::path::Path,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let endpoint = Endpoint::Unix(path.to_path_buf());
    let shared = Arc::new(Shared {
        repo,
        config,
        shutdown: AtomicBool::new(false),
        active_sessions: AtomicUsize::new(0),
        denied_sessions: Counter::default(),
        usage: Mutex::new(BTreeMap::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("dejavu-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                spawn_session(Arc::clone(&accept_shared), stream);
            }
        })?;
    Ok(ServerHandle {
        endpoint,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Decrements the active-session count when a session thread exits, however
/// it exits.
struct SessionGuard(Arc<Shared>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::AcqRel);
    }
}

fn spawn_session<S: Read + Write + Send + 'static>(shared: Arc<Shared>, stream: S) {
    let _ = std::thread::Builder::new()
        .name("dejavu-serve-session".into())
        .spawn(move || run_session(shared, stream));
}

fn run_session<S: Read + Write>(shared: Arc<Shared>, mut stream: S) {
    // Admission first: a Hello on a full server is denied before any work.
    // The increment is optimistic so two racing Hellos cannot both sneak
    // under the cap.
    let admitted =
        shared.active_sessions.fetch_add(1, Ordering::AcqRel) < shared.config.max_sessions;
    let _guard = SessionGuard(Arc::clone(&shared));
    let tenant = match read_hello(&mut stream) {
        Ok(Some(tenant)) => tenant,
        Ok(None) => return,
        Err(err) => {
            reply_error(&mut stream, &err);
            return;
        }
    };
    if !admitted {
        shared.denied_sessions.inc();
        let _ = write_frame(
            &mut stream,
            &Response::Denied {
                reason: format!("at capacity ({} sessions)", shared.config.max_sessions),
            }
            .encode(),
        );
        return;
    }
    let usage = shared.usage_for(tenant);
    let hello_ok = Response::HelloOk {
        shard_count: shared.repo.shard_count() as u64,
    }
    .encode();
    if write_frame(&mut stream, &hello_ok).is_err() {
        return;
    }
    usage.bytes_out.add(hello_ok.len() as u64);
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean disconnect between frames.
            Ok(None) => return,
            Err(err) => {
                reply_error(&mut stream, &err);
                return;
            }
        };
        usage.bytes_in.add(body.len() as u64);
        let request = match Request::decode(&body) {
            Ok(req) => req,
            Err(err) => {
                reply_error(&mut stream, &err);
                return;
            }
        };
        usage.ops.inc();
        let response = handle(&shared.repo, request);
        let encoded = response.encode();
        match write_frame(&mut stream, &encoded) {
            Ok(()) => usage.bytes_out.add(encoded.len() as u64),
            // A response too large for one frame (a giant snapshot) gets an
            // error reply instead of a half-written stream.
            Err(WireError::Oversized { .. }) => {
                reply_error(
                    &mut stream,
                    &WireError::Oversized {
                        len: encoded.len() as u32,
                    },
                );
                return;
            }
            Err(_) => return,
        }
    }
}

/// Reads the opening frame and requires it to be `Hello`. `Ok(None)` means
/// the peer connected and left without speaking (the stop() wake-up does
/// exactly this).
fn read_hello<S: Read + Write>(stream: &mut S) -> Result<Option<TenantId>, WireError> {
    match read_frame(stream)? {
        None => Ok(None),
        Some(body) => match Request::decode(&body)? {
            Request::Hello { tenant } => Ok(Some(tenant)),
            _ => Err(WireError::Malformed {
                context: "first frame must be Hello",
            }),
        },
    }
}

fn reply_error<S: Write>(stream: &mut S, err: &WireError) {
    let _ = write_frame(
        stream,
        &Response::Error {
            message: err.to_string(),
        }
        .encode(),
    );
}

/// Maps one decoded request onto the repository. Pure dispatch — every
/// operation is a method the in-process engine already uses, which is what
/// keeps remote runs bit-identical to local ones.
fn handle(repo: &SharedSignatureRepository, request: Request) -> Response {
    match request {
        // A second Hello on an open session is a protocol violation.
        Request::Hello { .. } => Response::Error {
            message: "session already open".into(),
        },
        Request::Lookup {
            tenant,
            namespace,
            signature,
            interference_bucket,
            now,
        } => Response::Entry(repo.lookup(tenant, namespace, &signature, interference_bucket, now)),
        Request::Peek {
            namespace,
            signature,
            interference_bucket,
            now,
            exclude_owner,
        } => Response::Peeked(repo.peek_resolved(
            namespace,
            &signature,
            interference_bucket,
            now,
            exclude_owner,
        )),
        Request::Publish {
            tenant,
            namespace,
            signature,
            interference_bucket,
            allocation,
            tuned_at,
        } => {
            repo.insert(
                tenant,
                namespace,
                &signature,
                interference_bucket,
                allocation,
                tuned_at,
            );
            Response::Ok
        }
        Request::CommitBatch { ops } => Response::Applied(repo.apply_batch(&ops)),
        Request::EvictStale { now } => Response::Evicted(repo.evict_stale(now)),
        Request::EvictStaleShard { shard, now } => {
            if (shard as usize) < repo.shard_count() {
                Response::Evicted(repo.evict_stale_shard(shard as usize, now))
            } else {
                Response::Error {
                    message: format!(
                        "shard {shard} out of range (repository has {})",
                        repo.shard_count()
                    ),
                }
            }
        }
        Request::Meta => Response::Meta {
            shard_count: repo.shard_count() as u64,
            clock_secs: repo.clock().as_secs(),
            len: repo.len() as u64,
            anchors: repo.anchor_count() as u64,
        },
        Request::Stats => Response::Stats(repo.stats()),
        Request::ShardStats => Response::ShardStatsList(repo.shard_stats()),
        Request::Snapshot => Response::Snapshot(repo.save_snapshot_compact()),
    }
}
