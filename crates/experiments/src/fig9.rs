//! Figure 9 — scaling up SPECweb (support workload) under the HotMail trace:
//! the instance type (large vs. extra-large) DejaVu deploys over time and the
//! resulting QoS against the 95% compliance target. Also provides the shared
//! scale-up comparison used by Figure 10.

use crate::engine::{RunConfig, RunResult, SimulationEngine};
use crate::report::{pct, Report};
use dejavu_baselines::FixedMax;
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::{ServiceModel, SpecWebService, SpecWebWorkload};
use dejavu_traces::LoadTrace;

/// The result of a scale-up comparison on one trace.
#[derive(Debug, Clone)]
pub struct ScaleUpFigure {
    /// Name of the driving trace.
    pub trace_name: String,
    /// DejaVu run.
    pub dejavu: RunResult,
    /// Fixed full-capacity (always extra-large) run.
    pub fixed_max: RunResult,
    /// DejaVu provisioning-cost savings vs. always extra-large (reuse days).
    pub savings: f64,
    /// Fraction of observation ticks in which QoS stayed at or above 95%.
    pub qos_compliance: f64,
    /// Fraction of time spent on the extra-large configuration.
    pub xl_fraction: f64,
}

impl ScaleUpFigure {
    /// Renders the figure.
    pub fn report(&self, title: &str) -> Report {
        let mut r = Report::new(title);
        r.kv("trace", &self.trace_name);
        r.kv("DejaVu savings vs always-XL", pct(self.savings));
        r.kv("QoS >= 95% fraction", pct(self.qos_compliance));
        r.kv("time on extra-large", pct(self.xl_fraction));
        r.kv(
            "DejaVu mean adaptation (s)",
            format!("{:.1}", self.dejavu.mean_adaptation_secs()),
        );
        r
    }
}

/// Runs the scale-up comparison for a trace.
pub fn scale_up_comparison(trace: LoadTrace, seed: u64) -> ScaleUpFigure {
    let service = SpecWebService::new(SpecWebWorkload::Support);
    let trace_name = trace.name().to_string();
    let cfg = RunConfig::scale_up(
        format!("scale-up-{trace_name}"),
        trace,
        service.default_mix(),
        seed,
    );
    let engine = SimulationEngine::new(cfg);
    let space = engine.config().space.clone();

    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(seed).build(),
        Box::new(service),
        space.clone(),
    );
    let dejavu_run = engine.run(&service, &mut dejavu);
    let mut fixed = FixedMax::new(&space);
    let fixed_run = engine.run(&service, &mut fixed);

    let qos_compliance = 1.0 - dejavu_run.slo_violation_fraction;
    // Capacity 10 units = 5 extra-large instances.
    let xl_fraction = dejavu_run.capacity_units.fraction_above(7.5);
    ScaleUpFigure {
        trace_name,
        savings: dejavu_run.reuse_savings_vs(&fixed_run),
        qos_compliance,
        xl_fraction,
        dejavu: dejavu_run,
        fixed_max: fixed_run,
    }
}

/// Runs Figure 9 (HotMail trace).
pub fn run(seed: u64) -> ScaleUpFigure {
    scale_up_comparison(dejavu_traces::hotmail_week(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotmail_scale_up_matches_paper_shape() {
        let fig = run(1);
        // Paper: ~45% savings; the large type suffices most of the time.
        assert!(
            fig.savings > 0.30 && fig.savings < 0.55,
            "savings {}",
            fig.savings
        );
        assert!(fig.xl_fraction < 0.4, "xl fraction {}", fig.xl_fraction);
        assert!(
            fig.qos_compliance > 0.9,
            "compliance {}",
            fig.qos_compliance
        );
        assert!(fig.report("fig9").to_string().contains("savings"));
    }
}
