//! Baseline provisioning controllers used in the DejaVu evaluation.
//!
//! The paper compares DejaVu against several alternatives; each is implemented
//! here as a `dejavu_cloud::ProvisioningController`:
//!
//! * [`fixed`] — a fixed allocation, in particular the *always overprovision
//!   at full capacity* policy the cost-savings numbers are measured against.
//! * [`autopilot`] — the time-based controller of §4.1 that blindly repeats
//!   the hourly allocations learned during the first day of the trace.
//! * [`rightscale`] — a reproduction of the RightScale voting autoscaler
//!   (§4.1): utilization-threshold voting, ±instance steps and the "resize
//!   calm time" between actions.
//! * [`online_tuning`] — the state-of-the-art experiment-driven tuner that
//!   re-runs a tuning process on every workload change (the behaviour shown in
//!   Figure 1, with minutes-long adaptation per change).
//! * [`oracle`] — an offline oracle that always deploys the minimal
//!   SLO-meeting allocation instantly; a lower bound used for calibration and
//!   ablations, not a paper baseline.

pub mod autopilot;
pub mod fixed;
pub mod online_tuning;
pub mod oracle;
pub mod rightscale;

pub use autopilot::Autopilot;
pub use fixed::{FixedAllocation, FixedMax};
pub use online_tuning::OnlineTuning;
pub use oracle::Oracle;
pub use rightscale::{RightScale, RightScaleConfig};
