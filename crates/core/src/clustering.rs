//! Workload-class identification: clustering the signatures collected during
//! the learning phase into a small number of classes (§3.4).

use crate::error::DejaVuError;
use dejavu_metrics::WorkloadSignature;
use dejavu_ml::{Dataset, KMeans, KMeansConfig};
use serde::{Deserialize, Serialize};

/// Widest signature [`ClusteringOutcome::assign`] normalizes on the stack.
/// Signatures carry one value per selected metric — a dozen or so in
/// practice — so 64 covers everything without a per-call allocation.
const ASSIGN_STACK_DIMS: usize = 64;

/// The result of clustering the learning-phase signatures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringOutcome {
    /// The fitted k-means model over *normalized* signature vectors.
    pub kmeans: KMeans,
    /// Per-attribute (mean, std) used to normalize signature vectors.
    pub moments: Vec<(f64, f64)>,
    /// The cluster assignment of each training signature, in input order.
    pub assignments: Vec<usize>,
    /// For each cluster, the index (into the training set) of the signature
    /// closest to the centroid — the instance handed to the Tuner.
    pub medoids: Vec<usize>,
    /// The smallest distance between two cluster centroids (normalized space);
    /// used to calibrate unforeseen-workload detection.
    pub min_centroid_distance: f64,
    /// Per-cluster radius: the largest distance of a member from its centroid
    /// (normalized space). Unforeseen-workload detection compares new
    /// signatures against these radii.
    pub radii: Vec<f64>,
}

impl ClusteringOutcome {
    /// Number of workload classes.
    pub fn num_classes(&self) -> usize {
        self.kmeans.k()
    }

    /// A characteristic length scale for cluster `class`: its radius, falling
    /// back to the mean positive radius (for singleton clusters) and finally
    /// to a quarter of the smallest inter-centroid distance.
    pub fn cluster_scale(&self, class: usize) -> f64 {
        let own = self.radii.get(class).copied().unwrap_or(0.0);
        if own > 0.0 {
            return own;
        }
        let positive: Vec<f64> = self.radii.iter().copied().filter(|&r| r > 0.0).collect();
        if !positive.is_empty() {
            return positive.iter().sum::<f64>() / positive.len() as f64;
        }
        self.min_centroid_distance * 0.25
    }

    /// Normalizes a raw signature vector with the training moments.
    pub fn normalize(&self, values: &[f64]) -> Vec<f64> {
        Dataset::normalize_with(values, &self.moments)
    }

    /// Assigns a signature to its nearest class and reports the distance to
    /// that class's centroid (in normalized space).
    ///
    /// This runs once per observation tick fleet-wide, so it avoids the heap:
    /// signatures up to [`ASSIGN_STACK_DIMS`] attributes (every signature the
    /// metric layer produces) normalize into a stack buffer, and the nearest
    /// centroid is found in a single scan.
    pub fn assign(&self, signature: &WorkloadSignature) -> (usize, f64) {
        let values = signature.values();
        if values.len() <= ASSIGN_STACK_DIMS {
            let mut buf = [0.0f64; ASSIGN_STACK_DIMS];
            let v = &mut buf[..values.len()];
            Dataset::normalize_with_into(values, &self.moments, v);
            self.kmeans.assign_with_distance(v)
        } else {
            let v = self.normalize(values);
            self.kmeans.assign_with_distance(&v)
        }
    }
}

/// Clusters learning-phase signatures into workload classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadClusterer {
    /// Range of cluster counts to explore (automatic k selection).
    pub cluster_range: (usize, usize),
    /// Seed for k-means restarts.
    pub seed: u64,
}

impl WorkloadClusterer {
    /// Creates a clusterer.
    pub fn new(cluster_range: (usize, usize), seed: u64) -> Self {
        WorkloadClusterer {
            cluster_range,
            seed,
        }
    }

    /// Clusters the signatures.
    ///
    /// # Errors
    ///
    /// Returns [`DejaVuError::NoTrainingData`] if `signatures` is empty and
    /// propagates clustering errors.
    pub fn cluster(
        &self,
        signatures: &[WorkloadSignature],
    ) -> Result<ClusteringOutcome, DejaVuError> {
        if signatures.is_empty() {
            return Err(DejaVuError::NoTrainingData);
        }
        let names = signatures[0].names().to_vec();
        let mut dataset = Dataset::new(names);
        for sig in signatures {
            dataset
                .try_push(dejavu_ml::Instance::unlabeled(sig.values().to_vec()))
                .map_err(DejaVuError::from)?;
        }
        let (normalized, moments) = dataset.normalized();
        let lo = self.cluster_range.0.min(signatures.len());
        let hi = self.cluster_range.1.min(signatures.len());
        let kmeans = KMeans::fit_auto_k(&normalized, lo..=hi, &KMeansConfig::default(), self.seed)?;
        let assignments = kmeans.assignments().to_vec();
        let medoids = (0..kmeans.k())
            .map(|c| kmeans.medoid_of(&normalized, c).unwrap_or(0))
            .collect();
        let mut min_dist = f64::INFINITY;
        for (i, a) in kmeans.centroids().iter().enumerate() {
            for b in kmeans.centroids().iter().skip(i + 1) {
                min_dist = min_dist.min(dejavu_ml::dataset::distance(a, b));
            }
        }
        if !min_dist.is_finite() {
            min_dist = 1.0;
        }
        let mut radii = vec![0.0f64; kmeans.k()];
        for (i, inst) in normalized.instances().iter().enumerate() {
            let c = assignments[i];
            let d = dejavu_ml::dataset::distance(&inst.features, &kmeans.centroids()[c]);
            if d > radii[c] {
                radii[c] = d;
            }
        }
        Ok(ClusteringOutcome {
            kmeans,
            moments,
            assignments,
            medoids,
            min_centroid_distance: min_dist,
            radii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_metrics::{MetricModel, MetricSampler, SamplerConfig, WorkloadPoint};
    use dejavu_simcore::SimRng;
    use dejavu_traces::ServiceKind;

    fn signatures_for(levels: &[f64], per: usize, seed: u64) -> Vec<WorkloadSignature> {
        let sampler = MetricSampler::new(MetricModel::default(), SamplerConfig::default());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sigs = Vec::new();
        for &l in levels {
            let p = WorkloadPoint::new(ServiceKind::Cassandra, l, 0.05);
            for _ in 0..per {
                sigs.push(sampler.sample(&p, &mut rng));
            }
        }
        sigs
    }

    #[test]
    fn finds_the_underlying_plateau_count() {
        // 24 hourly signatures drawn from 4 distinct load plateaus (the Fig. 5 setup).
        let sigs = signatures_for(&[0.2, 0.45, 0.55, 0.95], 6, 1);
        let outcome = WorkloadClusterer::new((2, 8), 1).cluster(&sigs).unwrap();
        // The two middle plateaus are close; a small number of classes (3–5)
        // is the expected outcome — far fewer than the 24 hourly workloads.
        assert!(
            (3..=5).contains(&outcome.num_classes()),
            "classes {}",
            outcome.num_classes()
        );
        assert_eq!(outcome.assignments.len(), sigs.len());
        assert_eq!(outcome.medoids.len(), outcome.num_classes());
        assert!(outcome.min_centroid_distance > 0.0);
        assert_eq!(outcome.radii.len(), outcome.num_classes());
        for c in 0..outcome.num_classes() {
            assert!(outcome.cluster_scale(c) > 0.0);
        }
    }

    #[test]
    fn medoids_belong_to_their_cluster() {
        let sigs = signatures_for(&[0.3, 0.8], 10, 2);
        let outcome = WorkloadClusterer::new((2, 4), 2).cluster(&sigs).unwrap();
        for (c, &m) in outcome.medoids.iter().enumerate() {
            assert_eq!(outcome.assignments[m], c);
        }
    }

    #[test]
    fn assignment_of_new_signatures_matches_training_plateaus() {
        let sigs = signatures_for(&[0.25, 0.85], 10, 3);
        let outcome = WorkloadClusterer::new((2, 4), 3).cluster(&sigs).unwrap();
        let fresh = signatures_for(&[0.25], 1, 99);
        let (class, dist) = outcome.assign(&fresh[0]);
        assert_eq!(class, outcome.assignments[0]);
        assert!(dist < outcome.min_centroid_distance);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            WorkloadClusterer::new((2, 4), 1).cluster(&[]),
            Err(DejaVuError::NoTrainingData)
        ));
    }
}
