//! The serving differential: a fleet driven through `dejavu-serve`'s wire
//! client must be **bit-identical** to the same fleet run in process.
//!
//! The remote read path maps `peek_resolved_cached` onto a server-side
//! `peek_resolved` (the memo only skips re-derivation, never changes an
//! answer) and every write travels as the same `PendingOp` batch the
//! in-process committer applies, so there is no legitimate source of
//! divergence — any difference in the report, the hit-rate curve, or the
//! served repository's statistics (including **eviction** counts, which pin
//! the TTL sweep schedule) is a wire bug. `DEJAVU_WIRE_CASES` raises the
//! scenario count; the nightly CI job runs it at 8.
//!
//! Alongside the differential: live protocol error paths (truncated frame,
//! bad version, oversized payload — typed errors on the client, an error
//! reply and a closed connection on the server, never a panic), admission
//! control, and per-tenant usage accounting.

use dejavu_fleet::{
    FleetConfig, FleetEngine, FleetReport, RepositoryClient, ScenarioBuilder, SharedRepoConfig,
    SharedSignatureRepository, TransportConfig,
};
use dejavu_serve::{
    serve_tcp, RemoteRepository, Request, Response, ServeConfig, WireError, MAX_FRAME_LEN,
};
use dejavu_simcore::{SimDuration, SimTime};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn serve(repo_config: &SharedRepoConfig, max_sessions: usize) -> dejavu_serve::ServerHandle {
    serve_tcp(
        Arc::new(SharedSignatureRepository::new(repo_config.clone())),
        "127.0.0.1:0",
        ServeConfig { max_sessions },
    )
    .expect("server binds")
}

fn connect(handle: &dejavu_serve::ServerHandle, tenant: usize) -> RemoteRepository {
    RemoteRepository::connect_tcp(&handle.tcp_addr().expect("tcp server").to_string(), tenant)
        .expect("session opens")
}

fn assert_reports_bit_match(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "{label}: reports diverged"
    );
}

fn wire_cases() -> usize {
    std::env::var("DEJAVU_WIRE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The differential proper: for a family of scenarios (varying tenant
/// mixes, churn, shard counts, TTLs so evictions actually fire), the fleet
/// report of a run through the wire bit-matches the in-process run, and so
/// do the repository-side statistics on the serving side.
#[test]
fn wire_runs_bit_match_in_process_runs() {
    for case in 0..wire_cases() {
        let days = 1 + case % 2;
        let mut builder = ScenarioBuilder::new(format!("wire-{case}"), 23 ^ case as u64, days)
            .tick(SimDuration::from_secs(900.0))
            .diurnal_fleet(2 + case % 3)
            .specweb_fleet(1);
        if case % 2 == 1 {
            builder = builder.stagger_arrivals(
                2,
                SimDuration::from_hours(4.0),
                SimDuration::from_hours(3.0),
            );
        }
        let scenario = builder.build();
        let repo_config = SharedRepoConfig {
            shards: 1 + (case * 5) % 16,
            // Short enough that entries expire mid-run: the differential
            // covers eviction counts, not just hits.
            ttl: Some(SimDuration::from_hours(10.0 + case as f64)),
            ..Default::default()
        };
        let transport = if case % 2 == 0 {
            TransportConfig::Bsp
        } else {
            TransportConfig::WorkStealing {
                threads: 2,
                staleness: 0,
                adaptive: false,
            }
        };
        let engine = FleetEngine::new(
            scenario,
            FleetConfig {
                repo: repo_config.clone(),
                transport,
                ..Default::default()
            },
        );

        let local_repo = Arc::new(SharedSignatureRepository::new(repo_config.clone()));
        let local = engine.run_on(Arc::clone(&local_repo));

        let handle = serve(&repo_config, 8);
        let remote_client = Arc::new(connect(&handle, 0));
        let remote = engine.run_on_client(remote_client as _);

        assert_reports_bit_match(&local, &remote, &format!("wire case {case}"));
        let served = handle.repository();
        assert_eq!(
            local_repo.stats(),
            served.stats(),
            "wire case {case}: served repository statistics diverged (evictions included)"
        );
        assert_eq!(
            local_repo.shard_stats(),
            served.shard_stats(),
            "wire case {case}: per-shard statistics diverged"
        );
        assert_eq!(
            local_repo.len(),
            served.len(),
            "wire case {case}: entry count"
        );
        assert_eq!(
            local_repo.anchor_count(),
            served.anchor_count(),
            "wire case {case}: anchor count"
        );
        assert!(
            local_repo.stats().evictions > 0,
            "wire case {case}: the TTL never fired — the eviction differential is vacuous"
        );
        handle.stop();
    }
}

/// The remote client's metadata surface agrees with the served repository,
/// and direct wire publishes/lookups behave like in-process ones.
#[test]
fn remote_metadata_and_direct_operations_agree_with_the_server() {
    let handle = serve(&SharedRepoConfig::default(), 8);
    let client = connect(&handle, 3);
    assert_eq!(client.shard_count(), 16);
    assert_eq!(client.len(), 0);
    assert!(client.is_empty());

    let sig = [4.0, 9.0, 1.5];
    client
        .publish(
            3,
            77,
            &sig,
            1,
            dejavu_cloud::ResourceAllocation::large(5),
            SimTime::from_secs(60.0),
        )
        .expect("publish");
    assert_eq!(client.len(), 1);
    assert_eq!(client.anchor_count(), 1);
    assert_eq!(client.clock(), SimTime::from_secs(60.0));

    // A cross-tenant wire lookup hits and moves the hit counters.
    let entry = client
        .lookup(9, 77, &sig, 1, SimTime::from_secs(120.0))
        .expect("lookup")
        .expect("hit");
    assert_eq!(entry.allocation, dejavu_cloud::ResourceAllocation::large(5));
    assert_eq!(entry.owner, 3);
    assert_eq!(entry.hits, 1);
    assert_eq!(entry.cross_tenant_hits, 1);
    assert_eq!(handle.repository().stats().hits, 1);

    // The snapshot surface round-trips into a loadable repository.
    let snapshot = client.snapshot().expect("snapshot");
    let restored = SharedSignatureRepository::load_snapshot(&snapshot).expect("snapshot loads");
    assert_eq!(restored.len(), 1);

    // Usage accounting saw this tenant's traffic.
    let usage = handle.usage();
    let (tenant, stats) = usage
        .iter()
        .find(|(tenant, _)| *tenant == 3)
        .expect("tenant 3 accounted");
    assert_eq!(*tenant, 3);
    assert!(stats.ops >= 6, "ops accounted: {stats:?}");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0, "{stats:?}");
    handle.stop();
}

/// Admission control: sessions beyond the cap get a typed `Denied`, and a
/// released slot is reusable.
#[test]
fn admission_denies_sessions_beyond_the_cap_and_releases_slots() {
    let handle = serve(&SharedRepoConfig::default(), 1);
    let addr = handle.tcp_addr().expect("tcp server").to_string();
    let first = RemoteRepository::connect_tcp(&addr, 0).expect("first session");
    match RemoteRepository::connect_tcp(&addr, 1) {
        Err(WireError::Denied { reason }) => assert!(reason.contains("capacity"), "{reason}"),
        other => panic!("expected denial, got {other:?}"),
    }
    assert_eq!(handle.denied_sessions(), 1);
    drop(first);
    // The freed slot admits a new session (the server needs a moment to
    // observe the disconnect).
    let mut admitted = false;
    for _ in 0..50 {
        if RemoteRepository::connect_tcp(&addr, 2).is_ok() {
            admitted = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(admitted, "released session slot was never reusable");
    handle.stop();
}

fn raw_connect(handle: &dejavu_serve::ServerHandle) -> TcpStream {
    TcpStream::connect(handle.tcp_addr().expect("tcp server")).expect("connects")
}

fn send_frame(stream: &mut TcpStream, body: &[u8]) {
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(body).expect("body");
}

fn read_reply(stream: &mut TcpStream) -> Response {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("reply prefix");
    let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
    stream.read_exact(&mut body).expect("reply body");
    Response::decode(&body).expect("reply decodes")
}

fn expect_closed(stream: &mut TcpStream) {
    let mut buf = [0u8; 1];
    assert_eq!(
        stream.read(&mut buf).expect("read after error reply"),
        0,
        "server left the connection open after a protocol violation"
    );
}

/// Live protocol error paths: the server answers each violation with one
/// typed error frame and closes the connection — it never panics, and it
/// keeps serving other sessions afterwards.
#[test]
fn protocol_violations_get_typed_errors_and_never_kill_the_server() {
    let handle = serve(&SharedRepoConfig::default(), 8);

    // Bad version byte.
    let mut stream = raw_connect(&handle);
    send_frame(&mut stream, &[9, 1]);
    match read_reply(&mut stream) {
        Response::Error { message } => {
            assert!(message.contains("bad protocol version"), "{message}")
        }
        other => panic!("expected error reply, got {other:?}"),
    }
    expect_closed(&mut stream);

    // Oversized length prefix: rejected before the body is even read.
    let mut stream = raw_connect(&handle);
    stream
        .write_all(&(MAX_FRAME_LEN + 1).to_le_bytes())
        .expect("prefix");
    match read_reply(&mut stream) {
        Response::Error { message } => assert!(message.contains("oversized"), "{message}"),
        other => panic!("expected error reply, got {other:?}"),
    }
    expect_closed(&mut stream);

    // Truncated frame: the prefix promises more than the stream delivers.
    let mut stream = raw_connect(&handle);
    stream.write_all(&8u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[1, 1, 0]).expect("partial body");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    match read_reply(&mut stream) {
        Response::Error { message } => assert!(message.contains("truncated"), "{message}"),
        other => panic!("expected error reply, got {other:?}"),
    }
    expect_closed(&mut stream);

    // A first frame that is not Hello.
    let mut stream = raw_connect(&handle);
    send_frame(&mut stream, &Request::Meta.encode());
    match read_reply(&mut stream) {
        Response::Error { message } => assert!(message.contains("Hello"), "{message}"),
        other => panic!("expected error reply, got {other:?}"),
    }
    expect_closed(&mut stream);

    // An unknown opcode after a valid session opening.
    let mut stream = raw_connect(&handle);
    send_frame(&mut stream, &Request::Hello { tenant: 0 }.encode());
    assert!(matches!(read_reply(&mut stream), Response::HelloOk { .. }));
    send_frame(&mut stream, &[1, 42]);
    match read_reply(&mut stream) {
        Response::Error { message } => assert!(message.contains("unknown opcode"), "{message}"),
        other => panic!("expected error reply, got {other:?}"),
    }
    expect_closed(&mut stream);

    // After all of that abuse the server still serves healthy sessions.
    let client = connect(&handle, 5);
    assert_eq!(client.shard_count(), 16);
    handle.stop();
}

/// Stale-socket regression: a socket file left behind by an uncleanly
/// killed daemon (`SIGKILL` removes nothing) is detected — nobody answers
/// on it — and reclaimed, while a path a *live* server answers on stays a
/// real `AddrInUse` conflict.
#[cfg(unix)]
#[test]
fn stale_socket_files_are_reclaimed_but_live_servers_are_not() {
    use std::os::unix::net::UnixListener;
    let dir = std::env::temp_dir().join(format!("dejavu-stale-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("stale.sock");

    // Simulate the unclean death: bind, then drop the listener without
    // removing the file.
    drop(UnixListener::bind(&path).expect("first bind"));
    assert!(path.exists(), "precondition: the corpse file is on disk");

    let handle = dejavu_serve::serve_unix(
        Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default())),
        &path,
        ServeConfig::default(),
    )
    .expect("a dead socket file must be reclaimed");
    let client = RemoteRepository::connect_unix(&path, 0).expect("reclaimed socket serves");
    assert_eq!(client.shard_count(), 16);

    // Binding over the now-live server is a real conflict: refused, and
    // the running server keeps serving undisturbed.
    let err = dejavu_serve::serve_unix(
        Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default())),
        &path,
        ServeConfig::default(),
    )
    .expect_err("binding over a live server must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    assert_eq!(client.len(), 0, "original server no longer answers");
    drop(client);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The Unix-socket transport speaks the same protocol end to end.
#[cfg(unix)]
#[test]
fn unix_socket_sessions_serve_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("dejavu-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("socket dir");
    let path = dir.join("wire.sock");
    let handle = dejavu_serve::serve_unix(
        Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default())),
        &path,
        ServeConfig::default(),
    )
    .expect("unix server binds");
    let client = RemoteRepository::connect_unix(&path, 0).expect("unix session");
    assert_eq!(client.shard_count(), 16);
    client
        .publish(
            0,
            5,
            &[1.0, 2.0],
            0,
            dejavu_cloud::ResourceAllocation::extra_large(2),
            SimTime::from_secs(30.0),
        )
        .expect("publish over unix socket");
    assert_eq!(client.len(), 1);
    drop(client);
    handle.stop();
    assert!(!path.exists(), "stop() left the socket file behind");
    let _ = std::fs::remove_dir_all(&dir);
}
