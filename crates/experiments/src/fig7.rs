//! Figure 7 — scaling out Cassandra under the HotMail-style trace, including
//! the day-4 unforeseen workload that forces a full-capacity fallback.

use crate::fig6::{scale_out_comparison, ScaleOutFigure};
use dejavu_traces::hotmail_week;

/// Runs Figure 7 (HotMail trace).
pub fn run(seed: u64) -> ScaleOutFigure {
    scale_out_comparison(hotmail_week(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotmail_scale_out_matches_paper_shape() {
        let fig = run(1);
        assert!(
            (2..=5).contains(&fig.num_classes),
            "classes {}",
            fig.num_classes
        );
        // Paper: ~60% savings on this trace (see EXPERIMENTS.md for the gap).
        assert!(
            fig.dejavu_savings > 0.25 && fig.dejavu_savings < 0.75,
            "savings {}",
            fig.dejavu_savings
        );
        // The day-4 surge is unforeseen: at least one full-capacity fallback.
        assert!(fig.unforeseen >= 1, "unforeseen {}", fig.unforeseen);
        // Autopilot blindly repeats day 1 and misses the surge entirely,
        // violating the SLO noticeably more often than DejaVu.
        assert!(
            fig.autopilot.slo_violation_fraction > fig.dejavu.slo_violation_fraction,
            "autopilot {} vs dejavu {}",
            fig.autopilot.slo_violation_fraction,
            fig.dejavu.slo_violation_fraction
        );
    }
}
