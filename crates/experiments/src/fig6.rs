//! Figure 6 — scaling out Cassandra under the Messenger-style trace: offered
//! load, instance count chosen by DejaVu vs. Autopilot, and service latency
//! against the 60 ms SLO. Also provides the shared scale-out comparison used
//! by Figure 7.

use crate::engine::{RunConfig, RunResult, SimulationEngine};
use crate::report::{pct, Report};
use dejavu_baselines::{Autopilot, FixedMax};
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::CassandraService;
use dejavu_traces::{LoadTrace, RequestMix};

/// The result of a scale-out comparison on one trace.
#[derive(Debug, Clone)]
pub struct ScaleOutFigure {
    /// Name of the driving trace.
    pub trace_name: String,
    /// DejaVu run.
    pub dejavu: RunResult,
    /// Autopilot run.
    pub autopilot: RunResult,
    /// Fixed full-capacity run (the savings baseline).
    pub fixed_max: RunResult,
    /// Number of workload classes DejaVu identified.
    pub num_classes: usize,
    /// DejaVu cache hit rate during the reuse phase.
    pub hit_rate: f64,
    /// Number of unforeseen-workload (full-capacity) fallbacks.
    pub unforeseen: u64,
    /// DejaVu provisioning-cost savings vs. always-full-capacity (reuse days).
    pub dejavu_savings: f64,
    /// Autopilot provisioning-cost savings vs. always-full-capacity.
    pub autopilot_savings: f64,
}

impl ScaleOutFigure {
    /// Renders the figure as a text report.
    pub fn report(&self, title: &str) -> Report {
        let mut r = Report::new(title);
        r.kv("trace", &self.trace_name);
        r.kv("workload classes identified", self.num_classes);
        r.kv("DejaVu cache hit rate", pct(self.hit_rate));
        r.kv("unforeseen-workload fallbacks", self.unforeseen);
        r.kv("DejaVu savings vs fixed max", pct(self.dejavu_savings));
        r.kv(
            "Autopilot savings vs fixed max",
            pct(self.autopilot_savings),
        );
        r.kv(
            "DejaVu SLO violation fraction",
            pct(self.dejavu.slo_violation_fraction),
        );
        r.kv(
            "Autopilot SLO violation fraction",
            pct(self.autopilot.slo_violation_fraction),
        );
        r.kv(
            "DejaVu mean adaptation (s)",
            format!("{:.1}", self.dejavu.mean_adaptation_secs()),
        );
        let hours = (self.dejavu.end.as_hours()).round() as usize;
        r.hourly("load", &self.dejavu.load, hours.min(48));
        r.hourly("dejavu n", &self.dejavu.instance_count, hours.min(48));
        r.hourly("autopilot n", &self.autopilot.instance_count, hours.min(48));
        r.hourly("latency ms", &self.dejavu.latency_ms, hours.min(48));
        r
    }
}

/// Runs the scale-out comparison (DejaVu, Autopilot, fixed max) for a trace.
pub fn scale_out_comparison(trace: LoadTrace, seed: u64) -> ScaleOutFigure {
    let service = CassandraService::update_heavy();
    let mix = RequestMix::update_heavy();
    let trace_name = trace.name().to_string();

    let cfg = RunConfig::scale_out(format!("scale-out-{trace_name}"), trace.clone(), mix, seed);
    let engine = SimulationEngine::new(cfg);
    let space = engine.config().space.clone();

    let mut dejavu = DejaVuController::new(
        DejaVuConfig::builder().seed(seed).build(),
        Box::new(service),
        space.clone(),
    );
    let dejavu_run = engine.run(&service, &mut dejavu);

    let mut autopilot = Autopilot::learn_from_first_day(&trace, &service, &space);
    let autopilot_run = engine.run(&service, &mut autopilot);

    let mut fixed = FixedMax::new(&space);
    let fixed_run = engine.run(&service, &mut fixed);

    let stats = dejavu.stats();
    ScaleOutFigure {
        trace_name,
        num_classes: stats.num_classes,
        hit_rate: stats.hit_rate(),
        unforeseen: stats.unforeseen,
        dejavu_savings: dejavu_run.reuse_savings_vs(&fixed_run),
        autopilot_savings: autopilot_run.reuse_savings_vs(&fixed_run),
        dejavu: dejavu_run,
        autopilot: autopilot_run,
        fixed_max: fixed_run,
    }
}

/// Runs Figure 6 (Messenger trace).
pub fn run(seed: u64) -> ScaleOutFigure {
    scale_out_comparison(dejavu_traces::messenger_week(seed), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messenger_scale_out_matches_paper_shape() {
        let fig = run(1);
        // A handful of classes, overwhelmingly cache hits.
        assert!(
            (2..=5).contains(&fig.num_classes),
            "classes {}",
            fig.num_classes
        );
        assert!(fig.hit_rate > 0.7, "hit rate {}", fig.hit_rate);
        // A substantial share of the provisioning cost is saved (paper: ~55%;
        // our conservative class merging over-provisions the night hours, see
        // EXPERIMENTS.md).
        assert!(
            fig.dejavu_savings > 0.20 && fig.dejavu_savings < 0.70,
            "savings {}",
            fig.dejavu_savings
        );
        // DejaVu keeps the SLO almost always; adaptation is ~10 s.
        assert!(
            fig.dejavu.slo_violation_fraction < 0.10,
            "violations {}",
            fig.dejavu.slo_violation_fraction
        );
        // The report renders.
        let text = fig.report("fig6").to_string();
        assert!(text.contains("savings"));
    }
}
