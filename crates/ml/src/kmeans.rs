//! k-means clustering with k-means++ seeding and automatic selection of the
//! number of clusters (silhouette score), mirroring the role of WEKA's
//! `SimpleKMeans` in the paper's workload-class identification step.

use crate::dataset::{distance, squared_distance, Dataset};
use crate::error::MlError;
use dejavu_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Configuration for a single k-means fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Number of random restarts; the best inertia wins.
    pub restarts: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-9,
            restarts: 4,
        }
    }
}

/// A fitted k-means model.
///
/// # Example
///
/// ```
/// use dejavu_ml::dataset::Dataset;
/// use dejavu_ml::kmeans::{KMeans, KMeansConfig};
/// let mut d = Dataset::new(vec!["x".into()]);
/// for i in 0..5 { d.push_unlabeled(vec![i as f64 * 0.1]); }
/// for i in 0..5 { d.push_unlabeled(vec![100.0 + i as f64 * 0.1]); }
/// let km = KMeans::fit(&d, &KMeansConfig { k: 2, ..Default::default() }, 1)?;
/// assert_ne!(km.assign(&[0.0]), km.assign(&[100.0]));
/// # Ok::<(), dejavu_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    assignments: Vec<usize>,
    iterations_run: usize,
}

impl KMeans {
    /// Fits k-means to `data` with the given configuration and seed.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] if `data` has no instances and
    /// [`MlError::InvalidK`] if `config.k` is zero or exceeds the number of
    /// instances.
    pub fn fit(data: &Dataset, config: &KMeansConfig, seed: u64) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if config.k == 0 || config.k > data.len() {
            return Err(MlError::InvalidK {
                requested: config.k,
                available: data.len(),
            });
        }
        if config.max_iterations == 0 {
            return Err(MlError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        let mut best: Option<KMeans> = None;
        let restarts = config.restarts.max(1);
        for r in 0..restarts {
            let mut rng = SimRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
            let fitted = Self::fit_once(data, config, &mut rng);
            if best
                .as_ref()
                .map(|b| fitted.inertia < b.inertia)
                .unwrap_or(true)
            {
                best = Some(fitted);
            }
        }
        Ok(best.expect("at least one restart ran"))
    }

    fn fit_once(data: &Dataset, config: &KMeansConfig, rng: &mut SimRng) -> KMeans {
        let points: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        let mut centroids = Self::kmeanspp_init(&points, config.k, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations_run = 0;
        for _ in 0..config.max_iterations {
            iterations_run += 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = Self::nearest(&centroids, p).0;
            }
            // Update step.
            let mut new_centroids = vec![vec![0.0; points[0].len()]; config.k];
            let mut counts = vec![0usize; config.k];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (acc, &x) in new_centroids[c].iter_mut().zip(p.iter()) {
                    *acc += x;
                }
            }
            for (c, centroid) in new_centroids.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // Re-seed an empty cluster with the point farthest from its centroid.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = squared_distance(a, &centroids[assignments[0]]);
                            let db = squared_distance(b, &centroids[assignments[0]]);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    *centroid = points[far].to_vec();
                } else {
                    for acc in centroid.iter_mut() {
                        *acc /= counts[c] as f64;
                    }
                }
            }
            let movement: f64 = centroids
                .iter()
                .zip(&new_centroids)
                .map(|(a, b)| distance(a, b))
                .sum();
            centroids = new_centroids;
            if movement < config.tolerance {
                break;
            }
        }
        // Final assignment + inertia.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (c, d2) = Self::nearest(&centroids, p);
            assignments[i] = c;
            inertia += d2;
        }
        KMeans {
            centroids,
            inertia,
            assignments,
            iterations_run,
        }
    }

    fn kmeanspp_init(points: &[&[f64]], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.uniform_usize(points.len())].to_vec());
        while centroids.len() < k {
            let weights: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| squared_distance(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                // All points coincide with existing centroids; duplicate one.
                centroids.push(points[rng.uniform_usize(points.len())].to_vec());
                continue;
            }
            let mut target = rng.uniform01() * total;
            let mut chosen = points.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(points[chosen].to_vec());
        }
        centroids
    }

    fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, c) in centroids.iter().enumerate() {
            let d = squared_distance(c, p);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// The fitted cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sum of squared distances of every training point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Cluster assignment of each training instance, in dataset order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Number of Lloyd iterations the winning restart executed.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Assigns a new point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if `point` has a different dimensionality than the centroids.
    pub fn assign(&self, point: &[f64]) -> usize {
        Self::nearest(&self.centroids, point).0
    }

    /// Distance from `point` to its nearest centroid.
    pub fn distance_to_nearest(&self, point: &[f64]) -> f64 {
        Self::nearest(&self.centroids, point).1.sqrt()
    }

    /// Index of the training instance closest to the centroid of `cluster`,
    /// i.e. the paper's "instance closest to the cluster's centroid" that is
    /// handed to the Tuner.
    ///
    /// Returns `None` if the cluster has no members.
    pub fn medoid_of(&self, data: &Dataset, cluster: usize) -> Option<usize> {
        let centroid = self.centroids.get(cluster)?;
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == cluster)
            .min_by(|(a, _), (b, _)| {
                let da = squared_distance(&data.instances()[*a].features, centroid);
                let db = squared_distance(&data.instances()[*b].features, centroid);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    /// Mean silhouette score of the clustering over `data` (higher is better,
    /// in `[-1, 1]`). Returns 0.0 for a single cluster.
    pub fn silhouette(&self, data: &Dataset) -> f64 {
        if self.k() < 2 || data.len() < 2 {
            return 0.0;
        }
        let points: Vec<&[f64]> = data
            .instances()
            .iter()
            .map(|i| i.features.as_slice())
            .collect();
        let mut total = 0.0;
        let mut counted = 0usize;
        for (i, p) in points.iter().enumerate() {
            let own = self.assignments[i];
            let mut intra = 0.0;
            let mut intra_n = 0usize;
            let mut inter: Vec<(f64, usize)> = vec![(0.0, 0); self.k()];
            for (j, q) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = distance(p, q);
                if self.assignments[j] == own {
                    intra += d;
                    intra_n += 1;
                } else {
                    let c = self.assignments[j];
                    inter[c].0 += d;
                    inter[c].1 += 1;
                }
            }
            if intra_n == 0 {
                continue;
            }
            let a = intra / intra_n as f64;
            let b = inter
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| s / *n as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                continue;
            }
            total += (b - a) / a.max(b);
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    /// Fits k-means for every `k` in `k_range` and returns the model with the
    /// best silhouette score, implementing the paper's "the framework can
    /// automatically determine the number of classes".
    ///
    /// # Errors
    ///
    /// Returns an error if the range is empty or invalid for the dataset.
    pub fn fit_auto_k(
        data: &Dataset,
        k_range: std::ops::RangeInclusive<usize>,
        base: &KMeansConfig,
        seed: u64,
    ) -> Result<Self, MlError> {
        let lo = *k_range.start();
        let hi = *k_range.end();
        if lo == 0 || lo > hi {
            return Err(MlError::InvalidConfig(format!(
                "invalid cluster range {lo}..={hi}"
            )));
        }
        let hi = hi.min(data.len());
        let mut fits: Vec<(f64, KMeans)> = Vec::new();
        for k in lo..=hi {
            let cfg = KMeansConfig { k, ..base.clone() };
            let model = KMeans::fit(data, &cfg, seed)?;
            let score = if k == 1 { 0.0 } else { model.silhouette(data) };
            fits.push((score, model));
        }
        // Prefer higher silhouette; among near-ties prefer more clusters.
        // Silhouette is biased toward very coarse clusterings when one cluster
        // sits far from the rest (the peak-hour workload class), while finer
        // classes only cost extra tuning runs — the cheap side of the
        // trade-off §3.4 of the paper describes.
        let best_score = fits
            .iter()
            .map(|(s, _)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let chosen = fits
            .into_iter()
            .filter(|(s, _)| *s >= best_score - 0.12)
            .max_by_key(|(_, m)| m.k())
            .expect("range validated to be non-empty");
        Ok(chosen.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into()]);
        for &(cx, cy) in centers {
            for _ in 0..per {
                d.push_unlabeled(vec![rng.normal(cx, spread), rng.normal(cy, spread)]);
            }
        }
        d
    }

    #[test]
    fn separates_clear_blobs() {
        let d = blobs(&[(0.0, 0.0), (50.0, 50.0)], 20, 0.5, 1);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        let a = km.assign(&[0.0, 0.0]);
        let b = km.assign(&[50.0, 50.0]);
        assert_ne!(a, b);
        assert!(km.inertia() < 100.0);
    }

    #[test]
    fn rejects_bad_k() {
        let d = blobs(&[(0.0, 0.0)], 3, 0.1, 1);
        assert!(matches!(
            KMeans::fit(
                &d,
                &KMeansConfig {
                    k: 0,
                    ..Default::default()
                },
                1
            ),
            Err(MlError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::fit(
                &d,
                &KMeansConfig {
                    k: 10,
                    ..Default::default()
                },
                1
            ),
            Err(MlError::InvalidK { .. })
        ));
    }

    #[test]
    fn rejects_empty_dataset() {
        let d = Dataset::new(vec!["x".into()]);
        assert_eq!(
            KMeans::fit(&d, &KMeansConfig::default(), 1).unwrap_err(),
            MlError::EmptyDataset
        );
    }

    #[test]
    fn assignments_cover_all_points() {
        let d = blobs(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 15, 0.3, 3);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(km.assignments().len(), d.len());
        assert!(km.assignments().iter().all(|&c| c < 3));
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let d = blobs(
            &[(0.0, 0.0), (30.0, 0.0), (0.0, 30.0), (30.0, 30.0)],
            12,
            0.5,
            4,
        );
        let base = KMeansConfig::default();
        let k2 = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..base.clone()
            },
            4,
        )
        .unwrap();
        let k4 = KMeans::fit(&d, &KMeansConfig { k: 4, ..base }, 4).unwrap();
        assert!(k4.silhouette(&d) > k2.silhouette(&d));
    }

    #[test]
    fn auto_k_finds_the_right_count() {
        let d = blobs(
            &[(0.0, 0.0), (40.0, 0.0), (0.0, 40.0), (40.0, 40.0)],
            10,
            0.4,
            5,
        );
        let model = KMeans::fit_auto_k(&d, 2..=8, &KMeansConfig::default(), 5).unwrap();
        assert_eq!(model.k(), 4);
    }

    #[test]
    fn medoid_is_member_of_cluster() {
        let d = blobs(&[(0.0, 0.0), (20.0, 20.0)], 10, 0.5, 6);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            6,
        )
        .unwrap();
        for c in 0..2 {
            let m = km.medoid_of(&d, c).unwrap();
            assert_eq!(km.assignments()[m], c);
        }
        assert!(km.medoid_of(&d, 99).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(&[(0.0, 0.0), (10.0, 10.0)], 10, 1.0, 7);
        let a = KMeans::fit(&d, &KMeansConfig::default(), 11).unwrap();
        let b = KMeans::fit(&d, &KMeansConfig::default(), 11).unwrap();
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn distance_to_nearest_is_small_for_training_points() {
        let d = blobs(&[(5.0, 5.0)], 20, 0.2, 8);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            8,
        )
        .unwrap();
        assert!(km.distance_to_nearest(&[5.0, 5.0]) < 1.0);
    }

    #[test]
    fn single_cluster_silhouette_is_zero() {
        let d = blobs(&[(0.0, 0.0)], 5, 0.1, 9);
        let km = KMeans::fit(
            &d,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            9,
        )
        .unwrap();
        assert_eq!(km.silhouette(&d), 0.0);
    }
}
