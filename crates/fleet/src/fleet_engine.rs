//! The fleet engine: runs every tenant of a [`Scenario`] concurrently over
//! the shared simulated clock, with all DejaVu controllers reading and
//! writing one [`SharedSignatureRepository`].
//!
//! # Determinism
//!
//! Tenants advance in **epochs** (bulk-synchronous): within an epoch each
//! worker thread steps a disjoint chunk of tenants through their observation
//! ticks, reading the shared repository through read-only, epoch-frozen
//! snapshots ([`SharedSignatureRepository::peek`]) while buffering their own
//! writes in per-tenant outboxes. At the epoch barrier the engine drains the
//! outboxes **in tenant order** and applies them, then runs TTL eviction.
//! Mid-epoch the shared store never changes, and commits have a fixed order,
//! so the fleet result is a pure function of the scenario — it does not
//! depend on thread count or OS scheduling.
//!
//! # Elastic tenancy
//!
//! Tenants may join and leave mid-run ([`crate::TenantSpec::start`] /
//! [`crate::TenantSpec::stop`]). Admission and retirement happen **at epoch
//! barriers only** — a joining tenant takes its first observation tick in the
//! epoch after the barrier at (or right after) its start time, and a leaving
//! tenant is finalized at the barrier ending the epoch that reaches its stop
//! time — so churn never perturbs the deterministic commit order. A tenant's
//! trace and local clock begin at its join barrier; because admission is
//! barrier-aligned, a tenant joining an otherwise quiescent fleet behaves bit
//! identically to a tenant running alone against a repository warm-started
//! from a snapshot of that fleet (property-tested in `tests/properties.rs`).
//!
//! # Warm starts
//!
//! [`FleetEngine::run_on`] runs the fleet against a caller-provided (e.g.
//! snapshot-loaded) repository, and the caller can persist the final state
//! with [`SharedSignatureRepository::save_snapshot`];
//! [`FleetEngine::run_warm`] wires both ends. A warm run **resumes the global
//! fleet clock at the snapshot's clock** (the seeding run's high-water mark),
//! so entry ages — and TTL expiry — carry over restarts rather than letting
//! arbitrarily old entries masquerade as fresh. [`FleetReport`] records
//! per-tenant epochs-to-first-fleet-reuse and the fleet-wide hit-rate curve,
//! which is how warm-start convergence is measured against cold starts.

use crate::engine::{RunState, SimulationEngine};
use crate::report::{FleetReport, SharedRepoSnapshot, TenantOutcome};
use crate::scenario::Scenario;
use crate::shared_repo::{PendingOp, SharedRepoConfig, SharedSignatureRepository};
use crate::snapshot::SnapshotError;
use crate::tenant_view::{Outbox, TenantRepoView};
use dejavu_baselines::{FixedMax, RightScale, RightScaleConfig};
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_services::ServiceModel;
use dejavu_simcore::SimTime;
use std::sync::Arc;

/// Whether tenants share one repository or each keep their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// All tenants read/write the fleet-shared repository.
    Shared,
    /// Every tenant keeps a private `SignatureRepository` (the ablation the
    /// fleet experiment compares against).
    Isolated,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Repository sharing mode.
    pub sharing: SharingMode,
    /// Worker threads; 0 means "one per available core".
    pub workers: usize,
    /// Shared-repository sharding/TTL configuration.
    pub repo: SharedRepoConfig,
    /// Learning-phase length handed to every tenant's DejaVu controller.
    pub learning_hours: u64,
    /// Also run the `FixedMax` and `RightScale` baselines for every tenant
    /// (for the fleet-wide cost comparison). Roughly triples the work.
    pub run_baselines: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sharing: SharingMode::Shared,
            workers: 0,
            repo: SharedRepoConfig::default(),
            learning_hours: 24,
            run_baselines: false,
        }
    }
}

/// One tenant's complete in-flight simulation, plus its tenancy window in
/// epochs (derived from the spec's start/stop times, barrier-aligned).
struct TenantRun {
    engine: SimulationEngine,
    service: Box<dyn ServiceModel>,
    controller: DejaVuController,
    state: RunState,
    fixed: Option<(FixedMax, RunState)>,
    rightscale: Option<(RightScale, RunState)>,
    /// First global epoch in which the tenant steps (its join barrier).
    start_epoch: usize,
    /// Global epoch count at whose barrier the tenant retires, if it leaves.
    stop_epoch: Option<usize>,
    /// Epochs since join at which the first `FleetReuse` fired (1-based).
    first_reuse_epoch: Option<usize>,
    /// Epochs this tenant has actually been stepped through.
    active_epochs: usize,
}

/// Steps one run up to (excluding) `epoch_end`.
fn step_until(
    engine: &SimulationEngine,
    service: &dyn ServiceModel,
    state: &mut RunState,
    controller: &mut dyn ProvisioningController,
    epoch_end: SimTime,
) {
    while let Some(t) = state.next_tick_time() {
        if t.as_secs() >= epoch_end.as_secs() {
            break;
        }
        engine.step(state, service, controller);
    }
}

impl TenantRun {
    /// Steps every in-flight run of this tenant up to the barrier ending
    /// global epoch `epoch` (0-based), honouring the tenancy window. Times
    /// handed to the tenant are **local** (zero at its join barrier), so a
    /// late joiner steps exactly like a tenant that started a fresh fleet.
    fn step_epoch(&mut self, epoch: usize, epoch_secs: f64) {
        let end_epoch = epoch + 1;
        if end_epoch <= self.start_epoch {
            return; // not admitted yet
        }
        let mut local_epochs = end_epoch - self.start_epoch;
        if let Some(stop) = self.stop_epoch {
            let cap = stop.saturating_sub(self.start_epoch);
            if cap == 0 {
                return;
            }
            local_epochs = local_epochs.min(cap);
        }
        if local_epochs <= self.active_epochs {
            return; // already stepped past its retirement barrier
        }
        self.active_epochs = local_epochs;
        let epoch_end = SimTime::from_secs(epoch_secs * local_epochs as f64);
        let service = self.service.as_ref();
        step_until(
            &self.engine,
            service,
            &mut self.state,
            &mut self.controller,
            epoch_end,
        );
        if let Some((controller, state)) = &mut self.fixed {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
        if let Some((controller, state)) = &mut self.rightscale {
            step_until(&self.engine, service, state, controller, epoch_end);
        }
    }

    /// Whether the tenant retires at the barrier ending global epoch `epoch`.
    fn retires_at(&self, epoch: usize) -> bool {
        let end_epoch = epoch + 1;
        end_epoch > self.start_epoch
            && (self.state.is_done() || self.stop_epoch.is_some_and(|stop| end_epoch >= stop))
    }
}

/// Runs a whole fleet deterministically.
#[derive(Debug)]
pub struct FleetEngine {
    scenario: Scenario,
    config: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for `scenario` under `config`.
    pub fn new(scenario: Scenario, config: FleetConfig) -> Self {
        FleetEngine { scenario, config }
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn worker_count(&self, tenants: usize) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        configured.clamp(1, tenants.max(1))
    }

    /// Runs the fleet to completion against a fresh, cold repository.
    pub fn run(&self) -> FleetReport {
        self.run_on(Arc::new(SharedSignatureRepository::new(
            self.config.repo.clone(),
        )))
    }

    /// Loads `snapshot` (see [`crate::snapshot`]) and runs the fleet against
    /// the warm repository it describes. The snapshot's own configuration
    /// (sharding, TTL, tolerance) governs the repository, not
    /// [`FleetConfig::repo`]. Returns the report and the repository so the
    /// caller can persist the post-run state.
    pub fn run_warm(
        &self,
        snapshot: &str,
    ) -> Result<(FleetReport, Arc<SharedSignatureRepository>), SnapshotError> {
        let shared = Arc::new(SharedSignatureRepository::load_snapshot(snapshot)?);
        let report = self.run_on(Arc::clone(&shared));
        Ok((report, shared))
    }

    /// Runs the fleet against a caller-provided repository (cold or
    /// snapshot-loaded). Keep a clone of the `Arc` to call
    /// [`SharedSignatureRepository::save_snapshot`] afterwards.
    pub fn run_on(&self, shared: Arc<SharedSignatureRepository>) -> FleetReport {
        let warm_start = !shared.is_empty();
        let epoch_secs = self.scenario.epoch.as_secs();
        // A warm-started fleet resumes the global clock where the snapshot
        // left it (the repository's high-water mark): entry ages, and with
        // them TTL expiry, carry over restarts instead of resetting to zero.
        // Cold repositories have a zero clock, so nothing changes for them.
        let origin_secs = shared.clock().as_secs();
        let to_epochs = |secs: f64| (secs / epoch_secs).ceil() as usize;
        let mut runs: Vec<Option<TenantRun>> = Vec::with_capacity(self.scenario.tenants.len());
        let mut outboxes: Vec<Option<Outbox>> = Vec::with_capacity(self.scenario.tenants.len());

        for spec in &self.scenario.tenants {
            let engine = SimulationEngine::new(spec.run_config(self.scenario.tick));
            let space = engine.config().space.clone();
            let dv_config = DejaVuConfig::builder()
                .learning_hours(self.config.learning_hours)
                .seed(spec.seed)
                .build();
            let mut controller =
                DejaVuController::new(dv_config, spec.service.build(), space.clone())
                    .with_name(format!("dejavu-{}", spec.name));
            let start_epoch = to_epochs(spec.start.as_secs());
            let outbox = match self.config.sharing {
                SharingMode::Shared => {
                    // The view maps this tenant's local clock onto the global
                    // fleet clock (its join barrier), so shared-store
                    // timestamps — and with them TTL staleness — stay
                    // coherent across tenants that joined at different times.
                    let (view, outbox) = TenantRepoView::new_with_offset(
                        Arc::clone(&shared),
                        spec.id,
                        spec.namespace(),
                        dejavu_simcore::SimDuration::from_secs(
                            origin_secs + epoch_secs * start_epoch as f64,
                        ),
                    );
                    controller = controller.with_store(Box::new(view));
                    Some(outbox)
                }
                SharingMode::Isolated => None,
            };
            let state = engine.begin();
            let fixed = self
                .config
                .run_baselines
                .then(|| (FixedMax::new(&space), engine.begin()));
            let rightscale = self.config.run_baselines.then(|| {
                (
                    RightScale::new(space.clone(), RightScaleConfig::default()),
                    engine.begin(),
                )
            });
            let stop_epoch = spec
                .stop
                .map(|stop| to_epochs(stop.as_secs()).max(start_epoch));
            runs.push(Some(TenantRun {
                engine,
                service: spec.service.build(),
                controller,
                state,
                fixed,
                rightscale,
                start_epoch,
                stop_epoch,
                first_reuse_epoch: None,
                active_epochs: 0,
            }));
            outboxes.push(outbox);
        }

        // Fleet horizon: every tenant's window, in epochs.
        let epochs = runs
            .iter()
            .zip(&self.scenario.tenants)
            .map(|(run, spec)| {
                let run = run.as_ref().expect("all runs live before the loop");
                let trace_epochs = to_epochs(spec.trace.duration().as_secs());
                match run.stop_epoch {
                    Some(stop) => stop.min(run.start_epoch + trace_epochs),
                    None => run.start_epoch + trace_epochs,
                }
            })
            .max()
            .unwrap_or(0);
        let workers = self.worker_count(runs.len());
        let mut cross_tenant_hits = vec![0u64; runs.len()];
        let mut outcomes: Vec<Option<TenantOutcome>> = (0..runs.len()).map(|_| None).collect();
        let mut hit_rate_curve = Vec::with_capacity(epochs);

        for epoch in 0..epochs {
            let chunk_size = runs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in runs.chunks_mut(chunk_size) {
                    scope.spawn(move || {
                        for run in chunk.iter_mut().flatten() {
                            run.step_epoch(epoch, epoch_secs);
                        }
                    });
                }
            });
            // Epoch barrier: publish buffered writes in tenant order, then age
            // out stale entries. This is the only place the shared store
            // changes, which is what keeps fleet runs deterministic. The whole
            // epoch's operations go through one batched commit — each shard's
            // write lock is taken once per barrier, not once per operation —
            // while the per-shard commit sequence stays in tenant order.
            let mut ops: Vec<PendingOp> = Vec::new();
            let mut op_tenants: Vec<usize> = Vec::new();
            for (tenant, outbox) in outboxes.iter().enumerate() {
                let Some(outbox) = outbox else { continue };
                let drained = std::mem::take(&mut *outbox.lock().expect("tenant outbox poisoned"));
                op_tenants.resize(op_tenants.len() + drained.len(), tenant);
                ops.extend(drained);
            }
            let applied = shared.apply_batch(&ops);
            for ((op, tenant), applied) in ops.iter().zip(&op_tenants).zip(applied) {
                // A hit only counts if the store still holds the entry at
                // commit time (an earlier publish in this barrier can have
                // re-anchored the namespace), keeping the engine-side and
                // store-side cross-tenant counters consistent.
                if applied && matches!(op, PendingOp::RecordHit { .. }) {
                    cross_tenant_hits[*tenant] += 1;
                }
            }
            shared.evict_stale(SimTime::from_secs(
                origin_secs + epoch_secs * (epoch + 1) as f64,
            ));

            // Convergence bookkeeping, then barrier-aligned retirement.
            let mut hits = 0u64;
            let mut misses = 0u64;
            for (i, slot) in runs.iter_mut().enumerate() {
                let Some(run) = slot else {
                    if let Some(outcome) = &outcomes[i] {
                        hits += outcome.stats.repository.hits;
                        misses += outcome.stats.repository.misses;
                    }
                    continue;
                };
                let stats = run.controller.stats();
                hits += stats.repository.hits;
                misses += stats.repository.misses;
                if run.first_reuse_epoch.is_none()
                    && epoch + 1 > run.start_epoch
                    && stats.fleet_reuses > 0
                {
                    run.first_reuse_epoch = Some(epoch + 1 - run.start_epoch);
                }
                if run.retires_at(epoch) {
                    let run = slot.take().expect("checked above");
                    outcomes[i] = Some(self.finalize(i, run, cross_tenant_hits[i]));
                }
            }
            hit_rate_curve.push(if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            });
        }

        // Finalize any tenant still in flight (e.g. a zero-epoch fleet).
        for (i, slot) in runs.iter_mut().enumerate() {
            if let Some(run) = slot.take() {
                outcomes[i] = Some(self.finalize(i, run, cross_tenant_hits[i]));
            }
        }
        let tenants: Vec<TenantOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every tenant finalized"))
            .collect();

        let shared_repo =
            (self.config.sharing == SharingMode::Shared).then(|| SharedRepoSnapshot {
                entries: shared.len(),
                anchors: shared.anchor_count(),
                stats: shared.stats(),
                shard_stats: shared.shard_stats(),
            });

        FleetReport {
            scenario: self.scenario.name.clone(),
            sharing: self.config.sharing,
            epochs,
            warm_start,
            tenants,
            shared_repo,
            hit_rate_curve,
        }
    }

    /// Turns a finished (or retired) tenant run into its outcome record.
    fn finalize(&self, index: usize, run: TenantRun, cross_tenant_hits: u64) -> TenantOutcome {
        let TenantRun {
            engine,
            controller,
            state,
            fixed,
            rightscale,
            start_epoch,
            first_reuse_epoch,
            active_epochs,
            ..
        } = run;
        let name = controller.name().to_string();
        let dejavu = engine.finish(state, &name);
        let fixed_max = fixed.map(|(c, s)| {
            let n = c.name().to_string();
            engine.finish(s, &n)
        });
        let rightscale = rightscale.map(|(c, s)| {
            let n = c.name().to_string();
            engine.finish(s, &n)
        });
        let spec = &self.scenario.tenants[index];
        TenantOutcome {
            id: spec.id,
            name: spec.name.clone(),
            namespace: spec.namespace(),
            stats: controller.stats().clone(),
            cross_tenant_hits,
            joined_epoch: start_epoch,
            active_epochs,
            first_fleet_reuse_epoch: first_reuse_epoch,
            dejavu,
            fixed_max,
            rightscale,
        }
    }
}

// `ProvisioningController::name` is on the trait; bring the concrete baseline
// types' trait methods into scope for the `finish` calls above.
use dejavu_cloud::ProvisioningController;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use dejavu_simcore::SimDuration;

    fn tiny_scenario(n: usize) -> Scenario {
        ScenarioBuilder::new("tiny", 11, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(n)
            .build()
    }

    #[test]
    fn fleet_runs_are_deterministic_across_worker_counts() {
        let mk = |workers| {
            FleetEngine::new(
                tiny_scenario(4),
                FleetConfig {
                    workers,
                    ..Default::default()
                },
            )
            .run()
        };
        let one = mk(1);
        let four = mk(4);
        for (a, b) in one.tenants.iter().zip(&four.tenants) {
            assert_eq!(
                a.dejavu.total_cost, b.dejavu.total_cost,
                "tenant {}",
                a.name
            );
            assert_eq!(
                a.dejavu.slo_violation_fraction,
                b.dejavu.slo_violation_fraction
            );
            assert_eq!(a.stats.tunings, b.stats.tunings);
            assert_eq!(a.cross_tenant_hits, b.cross_tenant_hits);
            assert_eq!(a.dejavu.latency_ms.values(), b.dejavu.latency_ms.values());
        }
        assert_eq!(one.hit_rate_curve, four.hit_rate_curve);
    }

    #[test]
    fn sharing_reduces_cold_start_tunings_and_lifts_hit_rate() {
        let shared = FleetEngine::new(tiny_scenario(6), FleetConfig::default()).run();
        let isolated = FleetEngine::new(
            tiny_scenario(6),
            FleetConfig {
                sharing: SharingMode::Isolated,
                ..Default::default()
            },
        )
        .run();
        assert!(shared.total_fleet_reuses() > 0, "fleet reuse never fired");
        assert!(
            shared.total_tunings() < isolated.total_tunings(),
            "sharing did not avoid tunings: {} vs {}",
            shared.total_tunings(),
            isolated.total_tunings()
        );
        assert!(
            shared.fleet_hit_rate() > isolated.fleet_hit_rate(),
            "sharing did not lift hit rate: {} vs {}",
            shared.fleet_hit_rate(),
            isolated.fleet_hit_rate()
        );
        let snapshot = shared.shared_repo.as_ref().expect("shared snapshot");
        assert!(snapshot.entries > 0);
        assert!(snapshot.stats.cross_tenant_hits > 0);
        assert!(isolated.shared_repo.is_none());
        assert!(!shared.warm_start);
        assert_eq!(shared.hit_rate_curve.len(), shared.epochs);
    }

    #[test]
    fn baselines_ride_along_when_requested() {
        let report = FleetEngine::new(
            tiny_scenario(2),
            FleetConfig {
                run_baselines: true,
                ..Default::default()
            },
        )
        .run();
        for t in &report.tenants {
            let fixed = t.fixed_max.as_ref().expect("fixed baseline present");
            assert!(fixed.total_cost >= t.dejavu.total_cost * 0.5);
            assert!(t.rightscale.is_some());
        }
        assert!(report.total_fixed_max_cost().unwrap() > 0.0);
    }

    #[test]
    fn staggered_arrivals_and_departures_shape_the_run() {
        let scenario = ScenarioBuilder::new("churn", 5, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .stagger_arrivals(
                2,
                SimDuration::from_hours(6.0),
                SimDuration::from_hours(3.0),
            )
            .depart_at(0, SimDuration::from_hours(12.0))
            .build();
        let report = FleetEngine::new(scenario, FleetConfig::default()).run();
        // 2 days + the latest joiner's 9 h offset = 57 one-hour epochs.
        assert_eq!(report.epochs, 57);
        let t = &report.tenants;
        assert_eq!((t[0].joined_epoch, t[1].joined_epoch), (0, 0));
        assert_eq!((t[2].joined_epoch, t[3].joined_epoch), (6, 9));
        // The departing tenant simulated only 12 of its 48 hours.
        assert_eq!(t[0].active_epochs, 12);
        assert_eq!(t[0].dejavu.load.len(), 12 * 6);
        assert_eq!(t[1].active_epochs, 48);
        // Late joiners still complete their full trace, shifted.
        assert_eq!(t[3].active_epochs, 48);
        assert_eq!(t[3].dejavu.load.len(), 48 * 6);
    }

    #[test]
    fn late_joiner_entries_survive_ttl_sweeps_on_the_global_clock() {
        // Tenant 1 joins at hour 30 with a 24 h TTL in force. Its publishes
        // must carry *global* timestamps: were they tenant-local, the first
        // barrier sweep after its join (global hour 31+) would see them as
        // 30-hours-old and reap them on sight.
        let scenario = ScenarioBuilder::new("ttl-churn", 11, 1)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(2)
            .arrive_at(1, SimDuration::from_hours(30.0))
            .build();
        let engine = FleetEngine::new(
            scenario,
            FleetConfig {
                repo: SharedRepoConfig {
                    ttl: Some(SimDuration::from_hours(24.0)),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let repo = Arc::new(SharedSignatureRepository::new(engine.config().repo.clone()));
        engine.run_on(Arc::clone(&repo));
        let snapshot = repo.to_snapshot();
        let late_entries: Vec<_> = snapshot
            .namespaces
            .iter()
            .flat_map(|ns| &ns.entries)
            .filter(|e| e.owner == 1)
            .collect();
        assert!(
            !late_entries.is_empty(),
            "the late joiner's entries were swept away"
        );
        // Its timestamps are global: at or after its hour-30 join barrier.
        for e in &late_entries {
            assert!(
                e.tuned_at_secs >= 30.0 * 3600.0,
                "tenant-local timestamp {} leaked into the shared store",
                e.tuned_at_secs
            );
        }
        // The founder's day-one entries aged out under the same TTL.
        assert!(repo.stats().evictions > 0, "TTL never evicted anything");
    }

    #[test]
    fn warm_start_resumes_the_fleet_clock_so_ttls_span_restarts() {
        let ttl_config = || FleetConfig {
            repo: SharedRepoConfig {
                ttl: Some(SimDuration::from_hours(24.0)),
                ..Default::default()
            },
            ..Default::default()
        };
        // Seed fleet: 2 days with a 24 h TTL; its clock ends at hour 48.
        let seed = FleetEngine::new(tiny_scenario(3), ttl_config());
        let repo = Arc::new(SharedSignatureRepository::new(seed.config().repo.clone()));
        seed.run_on(Arc::clone(&repo));
        assert_eq!(repo.clock().as_secs(), 48.0 * 3600.0);
        let evictions_at_snapshot = repo.stats().evictions;
        let entries_at_snapshot = repo.len();
        assert!(entries_at_snapshot > 0, "seed fleet left no entries");
        let snapshot = repo.save_snapshot();

        // Warm run: its barrier sweeps continue at hour 49, 50, …, so the
        // seeded day-two entries age past the TTL *during* the warm run
        // instead of being treated as freshly tuned at warm hour zero.
        let newcomer = FleetEngine::new(tiny_scenario(1), ttl_config());
        let (_, warm_repo) = newcomer.run_warm(&snapshot).expect("snapshot loads");
        assert_eq!(warm_repo.clock().as_secs(), (48.0 + 48.0) * 3600.0);
        assert!(
            warm_repo.stats().evictions > evictions_at_snapshot,
            "seeded entries never aged out during the warm run ({} vs {})",
            warm_repo.stats().evictions,
            evictions_at_snapshot
        );
    }

    #[test]
    fn warm_start_round_trips_through_snapshots() {
        let seeding = FleetEngine::new(tiny_scenario(4), FleetConfig::default());
        let repo = Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default()));
        let cold = seeding.run_on(Arc::clone(&repo));
        assert!(!cold.warm_start);
        let snapshot = repo.save_snapshot();

        let newcomer = FleetEngine::new(tiny_scenario(1), FleetConfig::default());
        let (warm, warm_repo) = newcomer.run_warm(&snapshot).expect("snapshot loads");
        assert!(warm.warm_start);
        // The newcomer converges faster than a cold-started twin.
        let cold_single = newcomer.run();
        let warm_first = warm.tenants[0].first_fleet_reuse_epoch.expect("warm reuse");
        // When the cold twin never reused, warm is strictly better already.
        if let Some(cold_first) = cold_single.tenants[0].first_fleet_reuse_epoch {
            assert!(warm_first <= cold_first);
        }
        assert!(warm.total_fleet_reuses() > 0);
        // The repository kept evolving and can be persisted again.
        assert!(warm_repo.save_snapshot().len() >= snapshot.len());
    }
}
