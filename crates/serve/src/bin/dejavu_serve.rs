//! The dejavu-serve daemon binary: hosts one shared signature repository
//! behind the wire protocol until interrupted.
//!
//! ```text
//! dejavu-serve --listen 127.0.0.1:7117 --shards 16 --max-sessions 64
//! dejavu-serve --unix /tmp/dejavu.sock --snapshot-in repo.json
//! dejavu-serve --checkpoint-dir /var/lib/dejavu/ckpt --checkpoint-every 64
//! ```

use dejavu_fleet::{SharedRepoConfig, SharedSignatureRepository};
use dejavu_serve::{serve_tcp, ServeConfig, ServePersistence};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
dejavu-serve: host a shared signature repository as an online service

USAGE:
    dejavu-serve [OPTIONS]

OPTIONS:
    --listen ADDR          TCP listen address (default 127.0.0.1:7117)
    --unix PATH            serve on a Unix domain socket instead of TCP
    --shards N             shard count for a fresh repository (default 16)
    --max-sessions N       admission cap on concurrent sessions (default 64)
    --snapshot-in PATH     seed the repository from a snapshot file
    --checkpoint-dir PATH  durable checkpoints: every acknowledged mutation
                           is on disk before its response, and a restarted
                           daemon replays the directory at boot (resuming
                           the repository bit-exactly instead of resetting)
    --checkpoint-every N   on-disk delta-chain compaction cadence
                           (default 64; 0 keeps every delta)
    --help                 print this help
";

struct Options {
    listen: String,
    unix: Option<String>,
    shards: usize,
    max_sessions: usize,
    snapshot_in: Option<String>,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:7117".to_string(),
        unix: None,
        shards: 16,
        max_sessions: 64,
        snapshot_in: None,
        checkpoint_dir: None,
        checkpoint_every: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        if arg == "--listen" {
            opts.listen = value("--listen")?;
        } else if arg == "--unix" {
            opts.unix = Some(value("--unix")?);
        } else if arg == "--shards" {
            opts.shards = value("--shards")?
                .parse()
                .map_err(|e| format!("--shards: {e}"))?;
        } else if arg == "--max-sessions" {
            opts.max_sessions = value("--max-sessions")?
                .parse()
                .map_err(|e| format!("--max-sessions: {e}"))?;
        } else if arg == "--snapshot-in" {
            opts.snapshot_in = Some(value("--snapshot-in")?);
        } else if arg == "--checkpoint-dir" {
            opts.checkpoint_dir = Some(value("--checkpoint-dir")?);
        } else if arg == "--checkpoint-every" {
            opts.checkpoint_every = value("--checkpoint-every")?
                .parse()
                .map_err(|e| format!("--checkpoint-every: {e}"))?;
        } else if arg == "--help" || arg == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        } else {
            return Err(format!("unknown argument {arg}"));
        }
    }
    Ok(opts)
}

/// Builds the repository and its persistence layer per the boot rules: an
/// existing manifest in `--checkpoint-dir` is replayed (and then owns the
/// repository's contents — mixing in `--snapshot-in` would be ambiguous, so
/// it is an error); otherwise the directory is initialized fresh around the
/// (possibly snapshot-seeded) repository.
fn boot(
    opts: &Options,
) -> Result<(Arc<SharedSignatureRepository>, Option<ServePersistence>), String> {
    if let Some(dir) = &opts.checkpoint_dir {
        let dir = std::path::Path::new(dir);
        if ServePersistence::exists(dir) {
            if opts.snapshot_in.is_some() {
                return Err(format!(
                    "{} already holds a checkpoint manifest; it defines the repository \
                     contents, so --snapshot-in must not also be given (remove the \
                     directory to start fresh from the snapshot)",
                    dir.display()
                ));
            }
            let (repo, persistence, report) = ServePersistence::resume(dir, opts.checkpoint_every)
                .map_err(|e| format!("replaying checkpoint directory: {e}"))?;
            eprintln!(
                "dejavu-serve: resumed {} entries / {} anchors from {} \
                 ({} deltas replayed{})",
                repo.len(),
                repo.anchor_count(),
                dir.display(),
                report.segments_replayed,
                if report.quarantined.is_empty() {
                    String::new()
                } else {
                    format!(", {} files quarantined", report.quarantined.len())
                }
            );
            for (file, reason) in &report.quarantined {
                eprintln!("dejavu-serve: quarantined {file}: {reason}");
            }
            return Ok((repo, Some(persistence)));
        }
    }
    let repo = match &opts.snapshot_in {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let repo = SharedSignatureRepository::load_snapshot(&text)
                .map_err(|e| format!("loading snapshot {path}: {e}"))?;
            eprintln!(
                "dejavu-serve: seeded {} entries / {} anchors from {path}",
                repo.len(),
                repo.anchor_count()
            );
            repo
        }
        None => SharedSignatureRepository::new(SharedRepoConfig {
            shards: opts.shards,
            ..SharedRepoConfig::default()
        }),
    };
    let repo = Arc::new(repo);
    let persistence = match &opts.checkpoint_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let persistence = ServePersistence::create(dir, &repo, opts.checkpoint_every)
                .map_err(|e| format!("initializing checkpoint directory: {e}"))?;
            eprintln!("dejavu-serve: durable checkpoints at {}", dir.display());
            Some(persistence)
        }
        None => None,
    };
    Ok((repo, persistence))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (repo, persistence) = match boot(&opts) {
        Ok(booted) => booted,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServeConfig {
        max_sessions: opts.max_sessions,
    };
    let handle = if let Some(path) = &opts.unix {
        #[cfg(unix)]
        {
            let path = std::path::Path::new(path);
            let bound = match persistence {
                Some(p) => dejavu_serve::serve_unix_persistent(repo, path, config, p),
                None => dejavu_serve::serve_unix(repo, path, config),
            };
            match bound {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("error: binding {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        #[cfg(not(unix))]
        {
            eprintln!("error: --unix is unsupported on this platform");
            return ExitCode::FAILURE;
        }
    } else {
        let bound = match persistence {
            Some(p) => dejavu_serve::serve_tcp_persistent(repo, &opts.listen, config, p),
            None => serve_tcp(repo, &opts.listen, config),
        };
        match bound {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("error: binding {}: {e}", opts.listen);
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!("dejavu-serve: listening on {}", handle.endpoint());
    // Serve until the process is killed; the accept thread owns the
    // listener, so parking the main thread is all that is left to do.
    loop {
        std::thread::park();
    }
}
