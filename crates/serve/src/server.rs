//! The dejavu-serve daemon: hosts one [`SharedSignatureRepository`] behind
//! the wire protocol, over TCP or a Unix socket.
//!
//! One OS thread per connection — the repository's read path is wait-free,
//! so concurrent sessions scale with cores rather than serializing on a
//! shard lock, and a thread blocked in `read` costs nothing. Each
//! connection must open with [`Request::Hello`]; admission control caps
//! live sessions at [`ServeConfig::max_sessions`] and refuses the rest with
//! a [`Response::Denied`] frame instead of a hang. Per-tenant usage
//! (operations, bytes in, bytes out) is accounted on lock-free
//! [`Counter`]s and readable at any time through
//! [`ServerHandle::usage`].
//!
//! Protocol violations never panic the server: a malformed frame gets one
//! [`Response::Error`] reply (when the stream still accepts writes) and the
//! connection closes.

use crate::protocol::{read_frame, write_frame, Request, Response, WireError};
use dejavu_fleet::{
    DeltaCursor, DurableCheckpointStore, DurableError, RecoveryReport, ShardStats,
    SharedSignatureRepository, TenantId,
};
use dejavu_obs::Counter;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently admitted sessions; further `Hello`s are denied.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_sessions: 64 }
    }
}

/// Lock-free per-tenant usage counters, shared between the accounting map
/// and the connection thread that bumps them.
#[derive(Debug, Default)]
struct TenantUsage {
    ops: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
}

/// A point-in-time copy of one tenant's usage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageSnapshot {
    /// Requests served for the tenant.
    pub ops: u64,
    /// Request bytes received (frame bodies).
    pub bytes_in: u64,
    /// Response bytes sent (frame bodies).
    pub bytes_out: u64,
}

/// The daemon's durable side: a [`DurableCheckpointStore`] over the served
/// repository plus the capture cursors that turn each acknowledged mutation
/// into an on-disk delta. Build one with [`ServePersistence::create`] (fresh
/// directory) or [`ServePersistence::resume`] (boot replay after a restart)
/// and hand it to [`serve_tcp_persistent`]/[`serve_unix_persistent`].
///
/// # Durability contract
///
/// A mutating request (`Publish`, `CommitBatch`, `EvictStale`,
/// `EvictStaleShard`) is captured to disk **before its response frame is
/// written**: an acknowledged write survives `SIGKILL`. `Lookup` bumps
/// read-path hit counters without a capture of its own — it only marks the
/// namespace dirty on its shard's capture cursor (hit counters move through
/// relaxed atomics, invisible to the namespace mutation clock) — so those
/// counters become durable at the touched shard's next mutating capture,
/// the same boundary at which the in-process committer would checkpoint
/// them. On a durable write error the daemon fail-stops its write path: the
/// failed request and every later mutating request get a
/// [`Response::Error`], while reads keep serving.
#[derive(Debug)]
pub struct ServePersistence {
    durable: DurableCheckpointStore,
    cursors: Vec<DeltaCursor>,
    /// Last recorded per-shard counter totals — a capture whose namespaces,
    /// stats and clock are all unchanged is skipped instead of recorded.
    last_stats: Vec<ShardStats>,
    /// Highest repository clock recorded so far. Load-bearing in the skip
    /// rule: a no-evict TTL sweep still advances the clock, and a bit-exact
    /// warm resume must replay that advance exactly once.
    clock_hw: f64,
    failed: Option<String>,
}

impl ServePersistence {
    /// Initializes `dir` as a fresh checkpoint directory anchored at
    /// `repo`'s current contents (which may already be warm from
    /// `--snapshot-in`). Call before serving — the base snapshot must be
    /// quiescent.
    pub fn create(
        dir: &Path,
        repo: &SharedSignatureRepository,
        checkpoint_every: usize,
    ) -> Result<Self, DurableError> {
        let durable = DurableCheckpointStore::create(dir, repo.to_snapshot(), checkpoint_every)?;
        Ok(Self::attach(durable, repo))
    }

    /// Replays the manifest in `dir` and rebuilds the repository it
    /// describes — the boot path of a restarted daemon. Returns the resumed
    /// repository (bit-exact at the last consistent prefix of acknowledged
    /// mutations), the persistence handle that continues its chains, and
    /// the [`RecoveryReport`] for logging.
    pub fn resume(
        dir: &Path,
        checkpoint_every: usize,
    ) -> Result<(Arc<SharedSignatureRepository>, Self, RecoveryReport), DurableError> {
        let (durable, report) = DurableCheckpointStore::open(dir, checkpoint_every)?;
        let repo = SharedSignatureRepository::from_snapshot(&report.resumed).map_err(|source| {
            DurableError::Snapshot {
                file: String::new(),
                source,
            }
        })?;
        let repo = Arc::new(repo);
        let persistence = Self::attach(durable, &repo);
        Ok((repo, persistence, report))
    }

    /// Whether `dir` holds a manifest [`resume`](Self::resume) can replay.
    pub fn exists(dir: &Path) -> bool {
        DurableCheckpointStore::exists(dir)
    }

    fn attach(durable: DurableCheckpointStore, repo: &SharedSignatureRepository) -> Self {
        let shards = repo.shard_count();
        let mut cursors = vec![DeltaCursor::default(); shards];
        for (shard, cursor) in cursors.iter_mut().enumerate() {
            repo.prime_delta_cursor(shard, cursor);
        }
        ServePersistence {
            durable,
            cursors,
            last_stats: repo.shard_stats(),
            clock_hw: repo.clock().as_secs(),
            failed: None,
        }
    }

    /// Captures and durably records the given shards' deltas (ascending,
    /// deduplicated). Unchanged shards are skipped without consuming an
    /// epoch. An `Err` is the message already stored in `failed`.
    fn capture(
        &mut self,
        repo: &SharedSignatureRepository,
        shards: &[usize],
    ) -> Result<(), String> {
        if let Some(message) = &self.failed {
            return Err(message.clone());
        }
        for &shard in shards {
            let epoch = self.durable.store().chain_end(shard);
            let delta = repo.capture_shard_delta(shard, epoch, &mut self.cursors[shard]);
            let unchanged = delta.namespaces.is_empty()
                && delta.shard_stats == self.last_stats[shard]
                && delta.clock_secs <= self.clock_hw;
            if unchanged {
                continue;
            }
            self.last_stats[shard] = delta.shard_stats;
            self.clock_hw = self.clock_hw.max(delta.clock_secs);
            if let Err(e) = self.durable.record(delta) {
                let message = format!(
                    "durable checkpoint write failed (mutations are now refused; \
                     restart the daemon to resume from the last consistent prefix): {e}"
                );
                self.failed = Some(message.clone());
                return Err(message);
            }
        }
        Ok(())
    }

    /// Marks a namespace whose read-path hit counters just moved (a wire
    /// `Lookup`), so the shard's next mutating capture re-images it. The
    /// counters themselves live in the repository; this only invalidates
    /// the capture cursor's "unchanged" memo for the namespace.
    fn note_lookup(&mut self, repo: &SharedSignatureRepository, namespace: u64) {
        if self.failed.is_some() {
            return;
        }
        self.cursors[repo.shard_index(namespace)].invalidate(namespace);
    }
}

/// State shared by the accept loop, every connection thread, and the
/// handle the caller keeps.
#[derive(Debug)]
struct Shared {
    repo: Arc<SharedSignatureRepository>,
    config: ServeConfig,
    shutdown: AtomicBool,
    active_sessions: AtomicUsize,
    denied_sessions: Counter,
    usage: Mutex<BTreeMap<TenantId, Arc<TenantUsage>>>,
    /// The durable write-through layer; `None` serves from memory only.
    persist: Option<Mutex<ServePersistence>>,
}

impl Shared {
    fn usage_for(&self, tenant: TenantId) -> Arc<TenantUsage> {
        let mut map = self.usage.lock().expect("usage map poisoned");
        Arc::clone(map.entry(tenant).or_default())
    }
}

/// Where a running server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7117`.
    Tcp(std::net::SocketAddr),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A running dejavu-serve instance. Dropping the handle without calling
/// [`stop`](Self::stop) leaves the accept thread running for the process
/// lifetime; call `stop` for a clean join.
#[derive(Debug)]
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound endpoint (with the OS-assigned port when bound to port 0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The TCP address, if serving over TCP.
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self.endpoint {
            Endpoint::Tcp(addr) => Some(addr),
            #[cfg(unix)]
            Endpoint::Unix(_) => None,
        }
    }

    /// The served repository.
    pub fn repository(&self) -> &Arc<SharedSignatureRepository> {
        &self.shared.repo
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::Acquire)
    }

    /// Sessions refused by admission control since start.
    pub fn denied_sessions(&self) -> u64 {
        self.shared.denied_sessions.get()
    }

    /// Point-in-time per-tenant usage, ordered by tenant id.
    pub fn usage(&self) -> Vec<(TenantId, UsageSnapshot)> {
        let map = self.shared.usage.lock().expect("usage map poisoned");
        map.iter()
            .map(|(&tenant, u)| {
                (
                    tenant,
                    UsageSnapshot {
                        ops: u.ops.get(),
                        bytes_in: u.bytes_in.get(),
                        bytes_out: u.bytes_out.get(),
                    },
                )
            })
            .collect()
    }

    /// Stops accepting connections and joins the accept thread. Admitted
    /// sessions stay live until their clients disconnect.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection; if the connect
        // fails the listener is already gone, which is just as final.
        match &self.endpoint {
            Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
            #[cfg(unix)]
            Endpoint::Unix(path) => drop(std::os::unix::net::UnixStream::connect(path)),
        }
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn shared_state(
    repo: Arc<SharedSignatureRepository>,
    config: ServeConfig,
    persist: Option<ServePersistence>,
) -> Arc<Shared> {
    Arc::new(Shared {
        repo,
        config,
        shutdown: AtomicBool::new(false),
        active_sessions: AtomicUsize::new(0),
        denied_sessions: Counter::default(),
        usage: Mutex::new(BTreeMap::new()),
        persist: persist.map(Mutex::new),
    })
}

/// Serves `repo` on a TCP address. Bind to port 0 to let the OS pick; the
/// chosen address is on the returned handle.
pub fn serve_tcp(
    repo: Arc<SharedSignatureRepository>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    serve_tcp_with(repo, addr, config, None)
}

/// [`serve_tcp`] with a durable write-through layer: acknowledged mutations
/// are on disk before their responses, so a killed-and-restarted daemon
/// resumes via [`ServePersistence::resume`] instead of resetting.
pub fn serve_tcp_persistent(
    repo: Arc<SharedSignatureRepository>,
    addr: &str,
    config: ServeConfig,
    persistence: ServePersistence,
) -> std::io::Result<ServerHandle> {
    serve_tcp_with(repo, addr, config, Some(persistence))
}

fn serve_tcp_with(
    repo: Arc<SharedSignatureRepository>,
    addr: &str,
    config: ServeConfig,
    persist: Option<ServePersistence>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let endpoint = Endpoint::Tcp(listener.local_addr()?);
    let shared = shared_state(repo, config, persist);
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("dejavu-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                spawn_session(Arc::clone(&accept_shared), stream);
            }
        })?;
    Ok(ServerHandle {
        endpoint,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Serves `repo` on a Unix domain socket path; the path is removed on
/// [`ServerHandle::stop`].
///
/// A socket file left behind by an uncleanly killed daemon (nothing removes
/// it on `SIGKILL`) is detected and reclaimed: if connecting to it is
/// refused, the stale file is removed and the path rebound. A path another
/// *live* server answers on is a real conflict and stays an `AddrInUse`
/// error.
#[cfg(unix)]
pub fn serve_unix(
    repo: Arc<SharedSignatureRepository>,
    path: &std::path::Path,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    serve_unix_with(repo, path, config, None)
}

/// [`serve_unix`] with a durable write-through layer; see
/// [`serve_tcp_persistent`].
#[cfg(unix)]
pub fn serve_unix_persistent(
    repo: Arc<SharedSignatureRepository>,
    path: &std::path::Path,
    config: ServeConfig,
    persistence: ServePersistence,
) -> std::io::Result<ServerHandle> {
    serve_unix_with(repo, path, config, Some(persistence))
}

#[cfg(unix)]
fn serve_unix_with(
    repo: Arc<SharedSignatureRepository>,
    path: &std::path::Path,
    config: ServeConfig,
    persist: Option<ServePersistence>,
) -> std::io::Result<ServerHandle> {
    use std::os::unix::net::{UnixListener, UnixStream};
    let listener = match UnixListener::bind(path) {
        Ok(listener) => listener,
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            // A socket file already exists. If a live server answers on it,
            // the conflict is real; if nobody does, it is the corpse of an
            // unclean death — reclaim it.
            if UnixStream::connect(path).is_ok() {
                return Err(e);
            }
            std::fs::remove_file(path)?;
            UnixListener::bind(path)?
        }
        Err(e) => return Err(e),
    };
    let endpoint = Endpoint::Unix(path.to_path_buf());
    let shared = shared_state(repo, config, persist);
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("dejavu-serve-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                spawn_session(Arc::clone(&accept_shared), stream);
            }
        })?;
    Ok(ServerHandle {
        endpoint,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Decrements the active-session count when a session thread exits, however
/// it exits.
struct SessionGuard(Arc<Shared>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::AcqRel);
    }
}

fn spawn_session<S: Read + Write + Send + 'static>(shared: Arc<Shared>, stream: S) {
    let _ = std::thread::Builder::new()
        .name("dejavu-serve-session".into())
        .spawn(move || run_session(shared, stream));
}

fn run_session<S: Read + Write>(shared: Arc<Shared>, mut stream: S) {
    // Admission first: a Hello on a full server is denied before any work.
    // The increment is optimistic so two racing Hellos cannot both sneak
    // under the cap.
    let admitted =
        shared.active_sessions.fetch_add(1, Ordering::AcqRel) < shared.config.max_sessions;
    let _guard = SessionGuard(Arc::clone(&shared));
    let tenant = match read_hello(&mut stream) {
        Ok(Some(tenant)) => tenant,
        Ok(None) => return,
        Err(err) => {
            reply_error(&mut stream, &err);
            return;
        }
    };
    if !admitted {
        shared.denied_sessions.inc();
        let _ = write_frame(
            &mut stream,
            &Response::Denied {
                reason: format!("at capacity ({} sessions)", shared.config.max_sessions),
            }
            .encode(),
        );
        return;
    }
    let usage = shared.usage_for(tenant);
    let hello_ok = Response::HelloOk {
        shard_count: shared.repo.shard_count() as u64,
    }
    .encode();
    if write_frame(&mut stream, &hello_ok).is_err() {
        return;
    }
    usage.bytes_out.add(hello_ok.len() as u64);
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean disconnect between frames.
            Ok(None) => return,
            Err(err) => {
                reply_error(&mut stream, &err);
                return;
            }
        };
        usage.bytes_in.add(body.len() as u64);
        let request = match Request::decode(&body) {
            Ok(req) => req,
            Err(err) => {
                reply_error(&mut stream, &err);
                return;
            }
        };
        usage.ops.inc();
        // Capture-before-ack: a mutating request's shard deltas hit the
        // durable store (under the persistence lock, so the mutation and
        // its capture are one atomic step) before the response frame is
        // written. A durable failure fail-stops the write path: the
        // mutation is refused and the session reports the error instead.
        // A `Lookup` is not captured — it marks its namespace dirty so the
        // hit counters it bumped ride the shard's next mutating capture.
        let lookup_ns = match (&shared.persist, &request) {
            (Some(_), Request::Lookup { namespace, .. }) => Some(*namespace),
            _ => None,
        };
        let response = match (&shared.persist, touched_shards(&shared.repo, &request)) {
            (Some(persist), Some(shards)) => {
                let mut state = persist.lock().expect("persistence state poisoned");
                if let Some(message) = state.failed.clone() {
                    Response::Error { message }
                } else {
                    let response = handle(&shared.repo, request);
                    match state.capture(&shared.repo, &shards) {
                        Ok(()) => response,
                        Err(message) => Response::Error { message },
                    }
                }
            }
            _ => {
                let response = handle(&shared.repo, request);
                if let (Some(persist), Some(namespace)) = (&shared.persist, lookup_ns) {
                    // After the handler: the hit is already bumped, so the
                    // next capture's re-image is guaranteed to carry it.
                    persist
                        .lock()
                        .expect("persistence state poisoned")
                        .note_lookup(&shared.repo, namespace);
                }
                response
            }
        };
        let encoded = response.encode();
        match write_frame(&mut stream, &encoded) {
            Ok(()) => usage.bytes_out.add(encoded.len() as u64),
            // A response too large for one frame (a giant snapshot) gets an
            // error reply instead of a half-written stream.
            Err(WireError::Oversized { .. }) => {
                reply_error(
                    &mut stream,
                    &WireError::Oversized {
                        len: encoded.len() as u32,
                    },
                );
                return;
            }
            Err(_) => return,
        }
    }
}

/// Reads the opening frame and requires it to be `Hello`. `Ok(None)` means
/// the peer connected and left without speaking (the stop() wake-up does
/// exactly this).
fn read_hello<S: Read + Write>(stream: &mut S) -> Result<Option<TenantId>, WireError> {
    match read_frame(stream)? {
        None => Ok(None),
        Some(body) => match Request::decode(&body)? {
            Request::Hello { tenant } => Ok(Some(tenant)),
            _ => Err(WireError::Malformed {
                context: "first frame must be Hello",
            }),
        },
    }
}

fn reply_error<S: Write>(stream: &mut S, err: &WireError) {
    let _ = write_frame(
        stream,
        &Response::Error {
            message: err.to_string(),
        }
        .encode(),
    );
}

/// The shards a request mutates (ascending, deduplicated), or `None` for
/// requests the durable layer need not capture. `Lookup` is deliberately
/// `None`: its read-path hit counters ride the touched shard's next
/// mutating capture (see [`ServePersistence`]).
fn touched_shards(repo: &SharedSignatureRepository, request: &Request) -> Option<Vec<usize>> {
    match request {
        Request::Publish { namespace, .. } => Some(vec![repo.shard_index(*namespace)]),
        Request::CommitBatch { ops } => {
            let shards: std::collections::BTreeSet<usize> = ops
                .iter()
                .map(|op| repo.shard_index(op.namespace()))
                .collect();
            Some(shards.into_iter().collect())
        }
        Request::EvictStale { .. } => Some((0..repo.shard_count()).collect()),
        Request::EvictStaleShard { shard, .. } => {
            let shard = *shard as usize;
            // An out-of-range shard is a protocol error `handle` reports;
            // nothing was mutated, so nothing needs capturing.
            (shard < repo.shard_count()).then(|| vec![shard])
        }
        _ => None,
    }
}

/// Maps one decoded request onto the repository. Pure dispatch — every
/// operation is a method the in-process engine already uses, which is what
/// keeps remote runs bit-identical to local ones.
fn handle(repo: &SharedSignatureRepository, request: Request) -> Response {
    match request {
        // A second Hello on an open session is a protocol violation.
        Request::Hello { .. } => Response::Error {
            message: "session already open".into(),
        },
        Request::Lookup {
            tenant,
            namespace,
            signature,
            interference_bucket,
            now,
        } => Response::Entry(repo.lookup(tenant, namespace, &signature, interference_bucket, now)),
        Request::Peek {
            namespace,
            signature,
            interference_bucket,
            now,
            exclude_owner,
        } => Response::Peeked(repo.peek_resolved(
            namespace,
            &signature,
            interference_bucket,
            now,
            exclude_owner,
        )),
        Request::Publish {
            tenant,
            namespace,
            signature,
            interference_bucket,
            allocation,
            tuned_at,
        } => {
            repo.insert(
                tenant,
                namespace,
                &signature,
                interference_bucket,
                allocation,
                tuned_at,
            );
            Response::Ok
        }
        Request::CommitBatch { ops } => Response::Applied(repo.apply_batch(&ops)),
        Request::EvictStale { now } => Response::Evicted(repo.evict_stale(now)),
        Request::EvictStaleShard { shard, now } => {
            if (shard as usize) < repo.shard_count() {
                Response::Evicted(repo.evict_stale_shard(shard as usize, now))
            } else {
                Response::Error {
                    message: format!(
                        "shard {shard} out of range (repository has {})",
                        repo.shard_count()
                    ),
                }
            }
        }
        Request::Meta => Response::Meta {
            shard_count: repo.shard_count() as u64,
            clock_secs: repo.clock().as_secs(),
            len: repo.len() as u64,
            anchors: repo.anchor_count() as u64,
        },
        Request::Stats => Response::Stats(repo.stats()),
        Request::ShardStats => Response::ShardStatsList(repo.shard_stats()),
        Request::Snapshot => Response::Snapshot(repo.save_snapshot_compact()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;
    use std::collections::VecDeque;
    use std::sync::mpsc;

    enum Script {
        Bytes(Vec<u8>),
        Panic,
    }

    /// A scriptable session stream: reads arrive over a channel (so a test
    /// can hold a session open, then drive or kill it), writes accumulate
    /// in a shared buffer. Dropping the sender is a clean EOF.
    struct ChanStream {
        rx: mpsc::Receiver<Script>,
        pending: VecDeque<u8>,
        out: Arc<Mutex<Vec<u8>>>,
    }

    impl Read for ChanStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pending.is_empty() {
                match self.rx.recv() {
                    Ok(Script::Bytes(bytes)) => self.pending.extend(bytes),
                    Ok(Script::Panic) => panic!("injected session panic"),
                    Err(_) => return Ok(0),
                }
            }
            let n = buf.len().min(self.pending.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.pending.pop_front().expect("pending byte");
            }
            Ok(n)
        }
    }

    impl Write for ChanStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.out
                .lock()
                .expect("out buffer poisoned")
                .extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    type Session = (
        mpsc::Sender<Script>,
        Arc<Mutex<Vec<u8>>>,
        std::thread::JoinHandle<()>,
    );

    fn session(shared: &Arc<Shared>) -> Session {
        let (tx, rx) = mpsc::channel();
        let out = Arc::new(Mutex::new(Vec::new()));
        let stream = ChanStream {
            rx,
            pending: VecDeque::new(),
            out: Arc::clone(&out),
        };
        let shared = Arc::clone(shared);
        let thread = std::thread::spawn(move || run_session(shared, stream));
        (tx, out, thread)
    }

    fn hello_frame(tenant: TenantId) -> Vec<u8> {
        let mut bytes = Vec::new();
        crate::protocol::write_frame(&mut bytes, &Request::Hello { tenant }.encode())
            .expect("hello frame");
        bytes
    }

    fn first_response(out: &Arc<Mutex<Vec<u8>>>) -> Response {
        let data = out.lock().expect("out buffer poisoned").clone();
        let mut cursor: &[u8] = &data;
        let body = read_frame(&mut cursor)
            .expect("response frame")
            .expect("one response written");
        Response::decode(&body).expect("response decodes")
    }

    fn wait_for(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..400 {
            if cond() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    /// Admission-counter regression: a session that dies by *panic* — not a
    /// clean disconnect — must still release its admission slot, because the
    /// decrement lives in `SessionGuard::drop` and unwinding runs it. Fill
    /// the cap, panic one session, and a new session must be admitted.
    #[test]
    fn a_panicking_session_releases_its_admission_slot() {
        let repo = Arc::new(SharedSignatureRepository::new(Default::default()));
        let shared = shared_state(repo, ServeConfig { max_sessions: 2 }, None);

        // Fill the cap with two live sessions.
        let (tx_a, out_a, thread_a) = session(&shared);
        tx_a.send(Script::Bytes(hello_frame(0))).expect("hello a");
        let (tx_b, out_b, thread_b) = session(&shared);
        tx_b.send(Script::Bytes(hello_frame(1))).expect("hello b");
        wait_for("both sessions admitted", || {
            !out_a.lock().expect("out a").is_empty() && !out_b.lock().expect("out b").is_empty()
        });
        assert!(matches!(first_response(&out_a), Response::HelloOk { .. }));
        assert!(matches!(first_response(&out_b), Response::HelloOk { .. }));
        assert_eq!(shared.active_sessions.load(Ordering::Acquire), 2);

        // A third session is over the cap: a typed denial, and its own
        // transient increment is released when the thread exits.
        let (tx_c, out_c, thread_c) = session(&shared);
        tx_c.send(Script::Bytes(hello_frame(2))).expect("hello c");
        drop(tx_c);
        thread_c.join().expect("denied session exits cleanly");
        assert!(matches!(first_response(&out_c), Response::Denied { .. }));
        assert_eq!(shared.denied_sessions.get(), 1);
        assert_eq!(shared.active_sessions.load(Ordering::Acquire), 2);

        // Session A dies by panic mid-session.
        tx_a.send(Script::Panic).expect("panic a");
        assert!(thread_a.join().is_err(), "session A should have panicked");
        assert_eq!(
            shared.active_sessions.load(Ordering::Acquire),
            1,
            "a panicked session leaked its admission slot"
        );

        // The freed slot admits a replacement.
        let (tx_d, out_d, thread_d) = session(&shared);
        tx_d.send(Script::Bytes(hello_frame(3))).expect("hello d");
        wait_for("replacement session admitted", || {
            !out_d.lock().expect("out d").is_empty()
        });
        assert!(matches!(first_response(&out_d), Response::HelloOk { .. }));

        drop(tx_b);
        drop(tx_d);
        thread_b.join().expect("session b exits");
        thread_d.join().expect("session d exits");
        assert_eq!(shared.active_sessions.load(Ordering::Acquire), 0);
    }
}
