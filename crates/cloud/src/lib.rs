//! A simulated virtualized hosting platform standing in for Amazon EC2.
//!
//! The DejaVu evaluation scales a service *out* (1–10 large instances) and
//! *up* (large ↔ extra-large instances) on EC2, pays July-2011 on-demand
//! prices, suffers boot/warm-up delays when reconfiguring, and experiences
//! performance interference from co-located tenants. This crate models those
//! mechanics:
//!
//! * [`instance`] — instance types (compute units, memory, price) and VM
//!   lifecycle states.
//! * [`allocation`] — the [`allocation::ResourceAllocation`] a controller
//!   requests (instance type × count) and the search lattice over allocations.
//! * [`platform`] — [`platform::CloudPlatform`]: applies allocations with
//!   realistic delays, tracks effective capacity, injects interference.
//! * [`cost`] — instance-hour cost metering.
//! * [`interference`] — co-located tenant schedules (the 10%/20%
//!   microbenchmark of §4.3).
//! * [`controller`] — the [`controller::ProvisioningController`] trait that
//!   DejaVu and every baseline implement, plus adaptation-event bookkeeping.

pub mod allocation;
pub mod controller;
pub mod cost;
pub mod error;
pub mod instance;
pub mod interference;
pub mod platform;

pub use allocation::{AllocationSpace, ResourceAllocation};
pub use controller::{
    AdaptationEvent, ControllerDecision, DecisionReason, Observation, ProvisioningController,
};
pub use cost::CostMeter;
pub use error::CloudError;
pub use instance::{InstanceType, VmInstance, VmState};
pub use interference::{InterferenceLevel, InterferenceSchedule};
pub use platform::{CloudPlatform, PlatformConfig};
