//! The fleet-shared signature repository: a sharded, lock-striped store of
//! allocation decisions that many tenants read and write concurrently.
//!
//! Layered on `dejavu_core::repository`: tenants interact through the
//! [`crate::tenant_view::TenantRepoView`] adapter (which implements
//! `dejavu_core::AllocationStore`), while this module owns the shared state.
//!
//! Because class ids are local to each tenant's clusterer, entries are *not*
//! keyed by class id. Instead each namespace (service kind × request mix ×
//! allocation space) maintains a list of **anchors** — full-catalogue workload
//! signatures characterizing a class. A tenant's class is matched to an anchor
//! by normalized signature distance, so tenants whose clusterers numbered
//! classes differently (or even found different class counts) still share
//! entries for equivalent workloads. Entries are keyed by
//! `(namespace, anchor, interference bucket)`.
//!
//! # Hot-path design
//!
//! * **Indexed anchor resolution.** A namespace's anchors are indexed by a
//!   ball tree in quantized log-magnitude space, with the query radius
//!   derived from the match tolerance so that any anchor within tolerance of
//!   a query provably lies inside the query's φ-ball ([`AnchorSet`]).
//!   `resolve` therefore inspects candidate cells/leaves instead of every
//!   anchor in the namespace, and the remaining exact checks use an
//!   early-exit distance ([`normalized_distance_within`]) that bails as soon
//!   as the partial sum exceeds the tolerance bound. Results — including the
//!   lowest-id tie-break — are bit-identical to a brute-force linear scan
//!   (property-tested in `tests/properties.rs`).
//! * **Wait-free read path.** Every write path republishes the shard's
//!   namespace map (copy-on-write `Arc`s per namespace) into a
//!   pin-protected [`SnapCell`] before releasing the shard write lock, and
//!   [`SharedSignatureRepository::lookup`] / `peek` resolve against that
//!   published snapshot without taking the lock at all — readers never
//!   block behind the committer's `apply_batch`/TTL-sweep write locks, or
//!   each other. Hit/miss/reuse counters are relaxed atomics
//!   ([`ShardCounters`], and per-entry counters shared across snapshot
//!   generations), so read-side accounting lands in the same counters the
//!   write path owns. Stale entries found by a lookup are counted as misses
//!   but left in place — eviction is deferred to the epoch TTL sweep
//!   ([`SharedSignatureRepository::evict_stale`]), which skips shards whose
//!   earliest-expiry watermark proves nothing can be stale yet.
//! * **Batched commits.** The commit path is **transport-driven**: whichever
//!   [`crate::transport`] backend coordinates the fleet applies an epoch's
//!   buffered operations through [`SharedSignatureRepository::apply_batch`],
//!   which groups them by shard and takes each shard's write lock once per
//!   epoch instead of once per operation, while preserving the deterministic
//!   tenant-order commit sequence within every shard.
//! * **Memoized resolution.** Controllers peek the same class-medoid
//!   signatures tick after tick; [`ResolveMemo`] caches their anchor
//!   resolutions and revalidates against only the anchors created since —
//!   provably bit-identical to resolving from scratch, because anchors only
//!   accrete and newer anchors lose distance ties.
//! * **Flat storage.** Entries live in a key-sorted
//!   [`FlatMap`](dejavu_core::FlatMap) (one contiguous vector per namespace)
//!   and anchor centroids in one flat `f64` slab per namespace, so a lookup
//!   touches contiguous memory instead of chasing B-tree nodes.
//!
//! Shards are lock-striped (`RwLock` per shard); a namespace's anchors and
//! entries live entirely within one shard, so anchor resolution needs a single
//! lock. Entries carry their tuning time; a TTL turns tuning decisions stale
//! so a fleet never reuses week-old allocations forever.

use crate::arena::{SigRef, SignatureArena};
use dejavu_cloud::{AllocationSpace, ResourceAllocation};
use dejavu_core::FlatMap;
use dejavu_obs::{Counter, Event, Recorder};
use dejavu_simcore::{SimDuration, SimTime};
use dejavu_traces::{RequestMix, ServiceKind};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::{Arc, RwLock};

/// Identifies a tenant within one fleet run.
pub type TenantId = usize;

/// Configuration of the shared repository.
#[derive(Debug, Clone)]
pub struct SharedRepoConfig {
    /// Number of lock-striped shards.
    pub shards: usize,
    /// Entries older than this (by tuning time) are treated as stale: lookups
    /// miss and [`SharedSignatureRepository::evict_stale`] removes them.
    pub ttl: Option<SimDuration>,
    /// Maximum normalized distance at which a class signature matches an
    /// existing anchor; beyond it a new anchor is created on insert.
    pub match_tolerance: f64,
}

impl Default for SharedRepoConfig {
    fn default() -> Self {
        SharedRepoConfig {
            shards: 16,
            ttl: None,
            match_tolerance: 0.10,
        }
    }
}

/// One cached allocation decision in the shared store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedEntry {
    /// The preferred allocation for this anchor × interference bucket.
    pub allocation: ResourceAllocation,
    /// When a tuner produced this entry.
    pub tuned_at: SimTime,
    /// The tenant whose tuning produced the entry.
    pub owner: TenantId,
    /// Total lookups served from this entry.
    pub hits: u64,
    /// Lookups served to tenants other than the owner.
    pub cross_tenant_hits: u64,
}

/// The stored form of an entry: reuse counters are relaxed atomics so the
/// wait-free read path can account hits against a published snapshot. The
/// counters sit behind `Arc`s that copy-on-write namespace clones **share**,
/// so a hit recorded through an older published generation lands in the same
/// counter the next capture reads — exactly as when there was one copy.
#[derive(Debug)]
struct StoredEntry {
    allocation: ResourceAllocation,
    tuned_at: SimTime,
    owner: TenantId,
    hits: Arc<AtomicU64>,
    cross_tenant_hits: Arc<AtomicU64>,
}

impl Clone for StoredEntry {
    fn clone(&self) -> Self {
        StoredEntry {
            allocation: self.allocation,
            tuned_at: self.tuned_at,
            owner: self.owner,
            // Shared, not copied: all generations of an entry are one
            // logical counter.
            hits: Arc::clone(&self.hits),
            cross_tenant_hits: Arc::clone(&self.cross_tenant_hits),
        }
    }
}

impl StoredEntry {
    fn snapshot(&self) -> SharedEntry {
        SharedEntry {
            allocation: self.allocation,
            tuned_at: self.tuned_at,
            owner: self.owner,
            hits: self.hits.load(Relaxed),
            cross_tenant_hits: self.cross_tenant_hits.load(Relaxed),
        }
    }
}

/// Hit/miss statistics of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing (or only stale entries).
    pub misses: u64,
    /// Entries inserted (including overwrites).
    pub insertions: u64,
    /// Entries removed for staleness.
    pub evictions: u64,
    /// Hits served to a tenant other than the entry's owner.
    pub cross_tenant_hits: u64,
    /// Anchors created in this shard.
    pub anchors_created: u64,
}

impl ShardStats {
    /// Cache hit rate over all lookups (0.0 if there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ShardStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.cross_tenant_hits += other.cross_tenant_hits;
        self.anchors_created += other.anchors_created;
    }
}

/// Per-shard counters, advanced with relaxed atomics (the shared
/// [`dejavu_obs::Counter`] primitive) so the read path never needs the shard
/// write lock. Snapshots are only taken at epoch barriers or after a run,
/// when no concurrent updates are in flight, so totals are exact.
#[derive(Debug, Default)]
struct ShardCounters {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    cross_tenant_hits: Counter,
    anchors_created: Counter,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardStats {
        ShardStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            cross_tenant_hits: self.cross_tenant_hits.get(),
            anchors_created: self.anchors_created.get(),
        }
    }

    fn restore(&self, stats: &ShardStats) {
        self.hits.set(stats.hits);
        self.misses.set(stats.misses);
        self.insertions.set(stats.insertions);
        self.evictions.set(stats.evictions);
        self.cross_tenant_hits.set(stats.cross_tenant_hits);
        self.anchors_created.set(stats.anchors_created);
    }
}

/// A write buffered by a tenant view during an epoch, applied at the epoch
/// barrier in tenant order so fleet runs are deterministic regardless of how
/// worker threads interleave.
#[derive(Debug, Clone, PartialEq)]
pub enum PendingOp {
    /// Publish a tuning decision to the fleet.
    Publish {
        /// The publishing tenant.
        tenant: TenantId,
        /// The tenant's namespace.
        namespace: u64,
        /// Full-catalogue class signature values.
        signature: Vec<f64>,
        /// Interference bucket of the entry.
        interference_bucket: u32,
        /// The tuned allocation.
        allocation: ResourceAllocation,
        /// When it was tuned.
        tuned_at: SimTime,
    },
    /// Account for a cross-tenant hit observed during the epoch.
    RecordHit {
        /// The reading tenant.
        tenant: TenantId,
        /// The reading tenant's namespace.
        namespace: u64,
        /// Signature that matched.
        signature: Vec<f64>,
        /// Interference bucket that matched.
        interference_bucket: u32,
        /// The `(anchor id, anchor count, distance)` witness of the peek-time
        /// resolution. Anchors only accrete and new ids always lose distance
        /// ties to older ones, so at commit the resolution can only change if
        /// an anchor created since the peek is strictly closer: the commit
        /// checks just those delta anchors instead of re-resolving the whole
        /// namespace — byte-identical outcomes either way. `None` (e.g.
        /// hand-built ops) resolves from scratch.
        resolved: Option<(u32, u32, f64)>,
    },
    /// Account for a shared-store miss observed during the epoch, so shard
    /// hit rates stay meaningful under the read-only epoch protocol.
    RecordMiss {
        /// The reading tenant's namespace.
        namespace: u64,
    },
}

impl PendingOp {
    /// The namespace the operation touches (determines its shard).
    pub fn namespace(&self) -> u64 {
        match self {
            PendingOp::Publish { namespace, .. }
            | PendingOp::RecordHit { namespace, .. }
            | PendingOp::RecordMiss { namespace } => *namespace,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    anchor: u32,
    interference_bucket: u32,
}

/// Values below this magnitude share one log-space band; mirrors the epsilon
/// floor in [`normalized_distance`].
const MAG_FLOOR: f64 = 1e-9;

/// Ball-tree leaves hold at most this many anchors.
const LEAF_SIZE: usize = 8;

/// Query φ vectors at most this wide are stack-allocated during resolution.
const PHI_STACK_DIMS: usize = 64;

/// Log-magnitude of a signature component: the coordinate the anchor index
/// works in. The key property (proved in the [`AnchorSet`] docs): two values
/// whose relative difference is δ < 1 have log-magnitudes within
/// `-ln(1 - δ)` of each other, regardless of sign or the ε floor.
fn log_mag(v: f64) -> f64 {
    v.abs().max(MAG_FLOOR).ln()
}

/// The φ-ball query radius implied by `tolerance` over `dims` dimensions
/// (0.0 disables the tree). Shared by anchor insertion and snapshot
/// restoration so a loaded repository derives the exact same bound.
fn phi_radius_bound(dims: usize, tolerance: f64) -> f64 {
    let per_dim_bound = tolerance * (dims as f64).sqrt();
    if (0.0..1.0).contains(&per_dim_bound) && per_dim_bound > 0.0 {
        // A hair of headroom absorbs floating-point rounding between the φ
        // mapping and the exact distance check.
        -(1.0 - per_dim_bound).ln() * (1.0 + 1e-12) + 1e-12
    } else {
        0.0
    }
}

/// One node of the anchor ball tree. Leaves reference a range of
/// [`AnchorSet::order`]; internal nodes reference their children.
#[derive(Debug, Clone, Copy)]
struct BallNode {
    /// Offset of this node's center in [`AnchorSet::node_centers`].
    center: u32,
    /// Radius of the ball (in log-magnitude space) around the center.
    radius: f64,
    /// Leaf: `[start, start+len)` into `order`. Internal: `len == 0`.
    start: u32,
    len: u32,
    /// Internal: child node indices. Unused for leaves.
    left: u32,
    right: u32,
}

/// The anchors of one namespace plus their quantized spatial index.
///
/// Centroids are stored in one flat slab (`centroids[slot*dims..]`), so
/// candidate checks stream contiguous memory. The index is a **ball tree in
/// log-magnitude space**: anchor `a` maps to `φ(a)_i = ln(max(|a_i|, 1e-9))`,
/// and the tree prunes by Euclidean distance over φ.
///
/// Why that is exact: a per-dimension relative difference
/// `δ_i = |x_i−y_i| / max(|x_i|,|y_i|,ε) < 1` implies
/// `|φ(x)_i − φ(y)_i| ≤ -ln(1−δ_i)` (wlog `u = max(|x_i|, ε) ≥ v`: either
/// `|x_i| ≥ ε`, then `|y_i| ≥ |x_i|(1−δ_i)` so the log-ratio of the floored
/// magnitudes is at most `-ln(1−δ_i)`; or both sit at the ε floor and the
/// difference is 0 — opposite signs above the floor are impossible with
/// δ < 1). A normalized distance ≤ tol over n dimensions bounds
/// `Σ δ_i² ≤ tol²·n`, and since `(-ln(1−δ))²` is convex the worst case
/// concentrates in one dimension, giving the Euclidean ball bound
/// `‖φ(x)−φ(y)‖₂ ≤ -ln(1 − tol·√n)`. Every anchor within tolerance of a
/// query therefore lies inside that φ-ball of the query: the tree yields a
/// candidate superset, and the early-exit [`normalized_distance_within`]
/// check in original space decides exactly.
///
/// When `tol·√n ≥ 1` the bound degenerates and the set falls back to a
/// linear scan, which the early-exit distance keeps cheap. Anchors added
/// since the last (deterministic, growth-triggered) rebuild are scanned
/// linearly as a tail.
#[derive(Debug, Default, Clone)]
struct AnchorSet {
    /// Signature length of the indexed anchors (fixed by the first anchor).
    dims: usize,
    /// Flat centroid slab for anchors whose signature length is `dims`.
    centroids: Vec<f64>,
    /// Flat slab of φ (log-magnitude) vectors, parallel to `centroids`.
    phi: Vec<f64>,
    /// Anchor ids in slab order (`slab_ids[slot]` = anchor id stored there).
    slab_ids: Vec<u32>,
    /// φ-ball query radius implied by the tolerance; 0.0 disables the tree.
    radius_bound: f64,
    /// Ball-tree nodes (root is node 0 when non-empty).
    nodes: Vec<BallNode>,
    /// Node centers slab (`node.center` indexes it, `dims` wide).
    node_centers: Vec<f64>,
    /// Slab slots, reordered so each leaf owns a contiguous range.
    order: Vec<u32>,
    /// Number of slab slots covered by the tree; slots beyond it are the
    /// linear tail, re-indexed when the slab outgrows `built * 5/4`.
    built: usize,
    /// Anchors whose signature length differs from `dims` (degenerate; kept
    /// for exactness — they can only match queries of their own length).
    /// Handles into `misfit_slab`, not per-anchor heap vectors.
    misfits: Vec<(u32, SigRef)>,
    /// Arena slab holding the misfit signatures contiguously.
    misfit_slab: SignatureArena,
    /// Total number of anchors ever created in this namespace.
    count: u32,
}

impl AnchorSet {
    /// Squared Euclidean distance between `a` and `b`, bailing out with
    /// `None` once it provably exceeds `bound_sq`. Runs on the
    /// mode-dispatched kernels of [`dejavu_ml::kernels`] (chunked by
    /// default, exact serial order under `DEJAVU_EXACT_KERNELS`).
    fn sq_dist_within(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        dejavu_ml::kernels::squared_distance_within(a, b, bound_sq)
    }

    /// Builds the ball tree over `slots` (recursive; appends to `nodes`).
    fn build_node(&mut self, start: usize, len: usize, scratch: &mut Vec<f64>) -> u32 {
        let dims = self.dims;
        // Node center: mean of member φ vectors; radius: max member distance.
        scratch.clear();
        scratch.resize(dims, 0.0);
        for &slot in &self.order[start..start + len] {
            let at = slot as usize * dims;
            for (acc, &v) in scratch.iter_mut().zip(&self.phi[at..at + dims]) {
                *acc += v;
            }
        }
        for acc in scratch.iter_mut() {
            *acc /= len as f64;
        }
        let center = self.node_centers.len() as u32;
        self.node_centers.extend_from_slice(scratch);
        let center_at = center as usize;
        let mut radius_sq = 0.0f64;
        for &slot in &self.order[start..start + len] {
            let at = slot as usize * dims;
            let d = Self::sq_dist_within(
                &self.phi[at..at + dims],
                &self.node_centers[center_at..center_at + dims],
                f64::INFINITY,
            )
            .expect("no bound");
            radius_sq = radius_sq.max(d);
        }
        let node_index = self.nodes.len() as u32;
        self.nodes.push(BallNode {
            center,
            radius: radius_sq.sqrt(),
            start: start as u32,
            len: len as u32,
            left: 0,
            right: 0,
        });
        if len <= LEAF_SIZE {
            return node_index;
        }
        // Split at the median of the widest-spread φ dimension. The sort key
        // includes the slot so the order (hence the tree) is deterministic.
        let mut split_dim = 0;
        let mut best_spread = -1.0f64;
        for d in 0..dims {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &slot in &self.order[start..start + len] {
                let v = self.phi[slot as usize * dims + d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                split_dim = d;
            }
        }
        {
            let (phi, order) = (&self.phi, &mut self.order);
            order[start..start + len].sort_by(|&a, &b| {
                let va = phi[a as usize * dims + split_dim];
                let vb = phi[b as usize * dims + split_dim];
                va.partial_cmp(&vb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
        }
        let half = len / 2;
        let left = self.build_node(start, half, scratch);
        let right = self.build_node(start + half, len - half, scratch);
        let node = &mut self.nodes[node_index as usize];
        node.len = 0;
        node.left = left;
        node.right = right;
        node_index
    }

    /// Rebuilds the tree over the whole slab (tail becomes empty).
    fn rebuild(&mut self) {
        self.nodes.clear();
        self.node_centers.clear();
        self.order = (0..self.slab_ids.len() as u32).collect();
        self.built = self.slab_ids.len();
        if self.built == 0 || self.radius_bound == 0.0 {
            return;
        }
        let mut scratch = Vec::with_capacity(self.dims);
        self.build_node(0, self.built, &mut scratch);
    }

    /// Nearest anchor within `tolerance`, or `None`. Ties break toward the
    /// lowest anchor id, so resolution is deterministic.
    fn resolve(&self, signature: &[f64], tolerance: f64, probes: &mut u64) -> Option<u32> {
        self.resolve_with_distance(signature, tolerance, probes)
            .map(|(_, id)| id)
    }

    /// [`resolve`](Self::resolve) returning `(distance, id)`. `probes`
    /// accumulates the ball-tree visit count: exact distance checks
    /// performed (slab slots and misfits examined) — the flight recorder's
    /// per-resolve work measure.
    fn resolve_with_distance(
        &self,
        signature: &[f64],
        tolerance: f64,
        probes: &mut u64,
    ) -> Option<(f64, u32)> {
        self.resolve_inner(signature, tolerance, probes)
    }

    /// [`resolve_with_distance`](Self::resolve_with_distance) through a
    /// caller-held [`ResolveMemo`]: a cached resolution is revalidated
    /// against only the anchors created since it was recorded
    /// ([`resolve_since`](Self::resolve_since)), which provably returns the
    /// same `(distance, id)` as a full resolution — anchors only accrete,
    /// and a newer (higher-id) anchor displaces a witnessed best only when
    /// strictly closer, exactly the epoch-commit witness rule.
    fn resolve_memoized(
        &self,
        signature: &[f64],
        tolerance: f64,
        memo: &mut ResolveMemo,
        probes: &mut u64,
    ) -> Option<(f64, u32)> {
        match memo.find(signature) {
            Some(slot) => {
                let entry = &mut memo.entries[slot];
                if entry.seen_anchors != self.count {
                    let since =
                        self.resolve_since(signature, tolerance, entry.seen_anchors, probes);
                    entry.resolved = match (entry.resolved, since) {
                        (Some((d_old, a_old)), Some((d_new, a_new))) => {
                            if d_new < d_old {
                                Some((d_new, a_new))
                            } else {
                                Some((d_old, a_old))
                            }
                        }
                        (None, since) => since,
                        (resolved, None) => resolved,
                    };
                    entry.seen_anchors = self.count;
                }
                entry.resolved
            }
            None => {
                let resolved = self.resolve_with_distance(signature, tolerance, probes);
                memo.insert(signature, self.count, resolved);
                resolved
            }
        }
    }

    /// Nearest anchor among those with ids ≥ `from_id` (the delta since a
    /// witnessed resolution), with the same tolerance and tie-break rules.
    fn resolve_since(
        &self,
        signature: &[f64],
        tolerance: f64,
        from_id: u32,
        probes: &mut u64,
    ) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        if self.dims > 0 && signature.len() == self.dims {
            let start = self.slab_ids.partition_point(|&id| id < from_id);
            for slot in start..self.slab_ids.len() {
                self.consider_slot(slot, signature, None, tolerance, &mut best, probes);
            }
        } else {
            self.scan_misfits(signature, tolerance, from_id, &mut best, probes);
        }
        best
    }

    /// Exact-checks the misfit anchors (ids ≥ `from_id`) against the query,
    /// with the same inclusive limit and lowest-id tie-break as
    /// [`consider_slot`](Self::consider_slot).
    fn scan_misfits(
        &self,
        signature: &[f64],
        tolerance: f64,
        from_id: u32,
        best: &mut Option<(f64, u32)>,
        probes: &mut u64,
    ) {
        for &(id, r) in &self.misfits {
            if id < from_id {
                continue;
            }
            *probes += 1;
            let values = self.misfit_slab.get(r);
            let limit = best.map_or(tolerance, |(d, _)| d.min(tolerance));
            if let Some(d) = normalized_distance_within(values, signature, limit) {
                if best.is_none_or(|(bd, bid)| d < bd || (d == bd && id < bid)) {
                    *best = Some((d, id));
                }
            }
        }
    }

    /// Exact-checks slab `slot` against the query, updating `best`. The
    /// bail-out bound tightens as better candidates are found but stays
    /// inclusive, so equal-distance candidates complete and the lowest-id
    /// tie-break stays exact. When the query's φ vector is available, a
    /// division-free φ-distance test (a necessary condition for matching
    /// within the current bound) screens the candidate first, so the
    /// division-heavy exact distance runs only on probable matches.
    #[allow(clippy::too_many_arguments)]
    fn consider_slot(
        &self,
        slot: usize,
        signature: &[f64],
        q_phi: Option<(&[f64], &mut (f64, f64))>,
        tolerance: f64,
        best: &mut Option<(f64, u32)>,
        probes: &mut u64,
    ) {
        *probes += 1;
        let id = self.slab_ids[slot];
        let at = slot * self.dims;
        let limit = best.map_or(tolerance, |(d, _)| d.min(tolerance));
        if let Some((q_phi, thresh_cache)) = q_phi {
            let thresh = self.cached_threshold(thresh_cache, limit);
            if thresh.is_finite()
                && Self::sq_dist_within(q_phi, &self.phi[at..at + self.dims], thresh * thresh)
                    .is_none()
            {
                return; // provably farther than `limit`
            }
        }
        if let Some(d) =
            normalized_distance_within(&self.centroids[at..at + self.dims], signature, limit)
        {
            if best.is_none_or(|(bd, bid)| d < bd || (d == bd && id < bid)) {
                *best = Some((d, id));
            }
        }
    }

    /// The φ-space pruning threshold for the current best distance `limit`:
    /// a ball whose nearest φ-point is farther than this provably contains
    /// only anchors with true distance > `limit`. Symmetric to the insertion
    /// bound: distance ≤ limit ⇒ ‖φ-diff‖ ≤ -ln(1 − limit·√n).
    fn phi_threshold(&self, limit: f64) -> f64 {
        let x = limit * (self.dims as f64).sqrt();
        if x >= 1.0 {
            f64::INFINITY
        } else {
            // Headroom for floating-point rounding between the φ mapping and
            // the exact distance check.
            -(1.0 - x).ln() * (1.0 + 1e-12) + 1e-12
        }
    }

    /// [`phi_threshold`](Self::phi_threshold) memoized on `limit`: the limit
    /// only changes when the best-so-far match improves, so the `ln` behind
    /// the threshold leaves the per-candidate inner loop.
    fn cached_threshold(&self, cache: &mut (f64, f64), limit: f64) -> f64 {
        if cache.0 != limit {
            *cache = (limit, self.phi_threshold(limit));
        }
        cache.1
    }

    /// Best-first branch-and-bound descent: visits the child whose ball is
    /// nearer to the query first, so the best-so-far distance (and with it
    /// the φ pruning radius) shrinks as early as possible. Pruned balls
    /// provably hold only anchors strictly farther than the current best, so
    /// the result — including the lowest-id tie-break — is identical to a
    /// full scan.
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        ni: u32,
        dist_to_center_sq: f64,
        q_phi: &[f64],
        signature: &[f64],
        tolerance: f64,
        best: &mut Option<(f64, u32)>,
        thresh_cache: &mut (f64, f64),
        probes: &mut u64,
    ) {
        let node = self.nodes[ni as usize];
        let limit = best.map_or(tolerance, |(d, _)| d.min(tolerance));
        let thresh = self.cached_threshold(thresh_cache, limit);
        if thresh.is_finite() {
            let reach = thresh + node.radius;
            if dist_to_center_sq > reach * reach {
                return; // every member is provably farther than `limit`
            }
        }
        if node.len > 0 {
            for &slot in &self.order[node.start as usize..(node.start + node.len) as usize] {
                self.consider_slot(
                    slot as usize,
                    signature,
                    Some((q_phi, &mut *thresh_cache)),
                    tolerance,
                    best,
                    probes,
                );
            }
            return;
        }
        let center_of = |child: u32| {
            let at = self.nodes[child as usize].center as usize;
            &self.node_centers[at..at + self.dims]
        };
        let dl = Self::sq_dist_within(q_phi, center_of(node.left), f64::INFINITY)
            .expect("unbounded distance");
        let dr = Self::sq_dist_within(q_phi, center_of(node.right), f64::INFINITY)
            .expect("unbounded distance");
        if dl <= dr {
            self.descend(
                node.left,
                dl,
                q_phi,
                signature,
                tolerance,
                best,
                thresh_cache,
                probes,
            );
            self.descend(
                node.right,
                dr,
                q_phi,
                signature,
                tolerance,
                best,
                thresh_cache,
                probes,
            );
        } else {
            self.descend(
                node.right,
                dr,
                q_phi,
                signature,
                tolerance,
                best,
                thresh_cache,
                probes,
            );
            self.descend(
                node.left,
                dl,
                q_phi,
                signature,
                tolerance,
                best,
                thresh_cache,
                probes,
            );
        }
    }

    fn resolve_inner(
        &self,
        signature: &[f64],
        tolerance: f64,
        probes: &mut u64,
    ) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        if self.dims > 0 && signature.len() == self.dims {
            if self.radius_bound > 0.0 && !self.nodes.is_empty() {
                // The query's φ vector lives on the stack for the typical
                // catalogue width, so the lookup hot path stays allocation
                // free; pathological widths spill to the heap.
                let mut stack_buf = [0.0f64; PHI_STACK_DIMS];
                let mut heap_buf = Vec::new();
                let q_phi: &[f64] = if self.dims <= PHI_STACK_DIMS {
                    for (out, &v) in stack_buf.iter_mut().zip(signature) {
                        *out = log_mag(v);
                    }
                    &stack_buf[..self.dims]
                } else {
                    heap_buf.extend(signature.iter().map(|&v| log_mag(v)));
                    &heap_buf
                };
                let at = self.nodes[0].center as usize;
                let d0 = Self::sq_dist_within(
                    q_phi,
                    &self.node_centers[at..at + self.dims],
                    f64::INFINITY,
                )
                .expect("unbounded distance");
                // (limit, φ-threshold) memo, refreshed when `best` improves.
                let mut thresh_cache = (f64::NAN, f64::INFINITY);
                self.descend(
                    0,
                    d0,
                    q_phi,
                    signature,
                    tolerance,
                    &mut best,
                    &mut thresh_cache,
                    probes,
                );
                // Anchors added since the last rebuild: linear tail, checked
                // with the (by now tight) best-so-far bound.
                for slot in self.built..self.slab_ids.len() {
                    self.consider_slot(
                        slot,
                        signature,
                        Some((q_phi, &mut thresh_cache)),
                        tolerance,
                        &mut best,
                        probes,
                    );
                }
            } else {
                for slot in 0..self.slab_ids.len() {
                    self.consider_slot(slot, signature, None, tolerance, &mut best, probes);
                }
            }
            // Misfits have a different length, so they can never match here.
        } else {
            self.scan_misfits(signature, tolerance, 0, &mut best, probes);
        }
        best
    }

    fn push(&mut self, signature: &[f64], tolerance: f64) -> u32 {
        let id = self.count;
        self.count += 1;
        if self.dims == 0 && !signature.is_empty() {
            // First anchor fixes the namespace's signature dimensionality and
            // the φ-ball bound derived from it.
            self.dims = signature.len();
            self.radius_bound = phi_radius_bound(self.dims, tolerance);
        }
        if signature.len() == self.dims && self.dims > 0 {
            self.centroids.extend_from_slice(signature);
            self.phi.extend(signature.iter().map(|&v| log_mag(v)));
            self.slab_ids.push(id);
            // Rebuild once the linear tail outgrows a fifth of the indexed
            // part; growth thresholds depend only on the anchor count, so
            // index geometry is reproducible run to run.
            let n = self.slab_ids.len();
            if self.radius_bound > 0.0 && n >= 2 * LEAF_SIZE && n > self.built + self.built / 4 {
                self.rebuild();
            }
        } else {
            let r = self.misfit_slab.alloc(signature);
            self.misfits.push((id, r));
        }
        id
    }

    fn len(&self) -> usize {
        self.count as usize
    }

    /// All anchors as `(id, values)` in strictly increasing id order, merging
    /// the slab (already id-ordered) with the misfits — the canonical order
    /// the snapshot format stores.
    fn snapshot_anchors(&self) -> Vec<crate::snapshot::AnchorSnapshot> {
        let mut out = Vec::with_capacity(self.len());
        let mut slab = 0usize;
        let mut misfit = 0usize;
        while slab < self.slab_ids.len() || misfit < self.misfits.len() {
            let take_slab = match (self.slab_ids.get(slab), self.misfits.get(misfit)) {
                (Some(&s), Some((m, _))) => s < *m,
                (Some(_), None) => true,
                _ => false,
            };
            if take_slab {
                let at = slab * self.dims;
                out.push(crate::snapshot::AnchorSnapshot {
                    id: self.slab_ids[slab],
                    values: self.centroids[at..at + self.dims].to_vec(),
                });
                slab += 1;
            } else {
                let (id, r) = self.misfits[misfit];
                out.push(crate::snapshot::AnchorSnapshot {
                    id,
                    values: self.misfit_slab.get(r).to_vec(),
                });
                misfit += 1;
            }
        }
        out
    }

    /// Reconstructs an anchor set from snapshot anchors (id order), exactly as
    /// if they had been [`push`](Self::push)ed one by one: the first non-empty
    /// anchor fixes `dims` and the φ bound, same-length anchors form the slab,
    /// everything else becomes a misfit. The ball tree is rebuilt from
    /// scratch; resolution is provably independent of index geometry.
    fn restore(
        anchors: &[crate::snapshot::AnchorSnapshot],
        tolerance: f64,
    ) -> Result<AnchorSet, String> {
        for (i, a) in anchors.iter().enumerate() {
            if a.id as usize != i {
                return Err(format!(
                    "anchor ids must be dense and ordered (found id {} at position {i})",
                    a.id
                ));
            }
        }
        let dims = anchors
            .iter()
            .find(|a| !a.values.is_empty())
            .map_or(0, |a| a.values.len());
        let mut set = AnchorSet {
            dims,
            radius_bound: phi_radius_bound(dims, tolerance),
            count: anchors.len() as u32,
            ..AnchorSet::default()
        };
        for a in anchors {
            if dims > 0 && a.values.len() == dims {
                set.centroids.extend_from_slice(&a.values);
                set.phi.extend(a.values.iter().map(|&v| log_mag(v)));
                set.slab_ids.push(a.id);
            } else {
                let r = set.misfit_slab.alloc(&a.values);
                set.misfits.push((a.id, r));
            }
        }
        set.rebuild();
        Ok(set)
    }
}

/// Memoized signatures kept per [`ResolveMemo`]; class-medoid sets are
/// small, and a bounded memo keeps the replacement policy deterministic.
const MEMO_CAPACITY: usize = 32;

/// Memo of anchor resolutions for signatures that recur lookup after lookup
/// (a tenant's class medoids). Correctness rests on the same two invariants
/// the epoch-commit witness check uses: anchors only **accrete** (ids are
/// never removed or renumbered), and a newer anchor displaces a witnessed
/// resolution only when it is **strictly closer** (equal distances tie-break
/// toward the lower, i.e. older, id). A result recorded against
/// `seen_anchors` anchors therefore stays exact after revalidating just the
/// anchors created since — bit-identical to a full resolution
/// (property-tested in `tests/properties.rs`).
///
/// A memo is bound to one namespace (handing it a different namespace
/// clears it) and must only be used against one repository.
#[derive(Debug, Default)]
pub struct ResolveMemo {
    /// The namespace the memo is bound to; rebinding clears it.
    namespace: Option<u64>,
    entries: Vec<MemoEntry>,
    /// Memoized signatures, packed in one arena slab instead of one heap
    /// vector per entry: fixed-dimension signatures are overwritten in
    /// place on replacement, so a full memo stops allocating entirely.
    slab: SignatureArena,
    /// Deterministic round-robin replacement cursor.
    cursor: usize,
}

#[derive(Debug)]
struct MemoEntry {
    signature: SigRef,
    /// Anchor count of the namespace when `resolved` was last validated.
    seen_anchors: u32,
    /// The witnessed resolution: `(distance, anchor id)`; `None` is a
    /// (still-cacheable) miss.
    resolved: Option<(f64, u32)>,
}

impl ResolveMemo {
    /// Binds the memo to `namespace`, clearing it when rebound.
    fn bind(&mut self, namespace: u64) {
        if self.namespace != Some(namespace) {
            self.entries.clear();
            self.slab.clear();
            self.cursor = 0;
            self.namespace = Some(namespace);
        }
    }

    /// Finds the entry whose signature is bit-identical to `signature`.
    fn find(&self, signature: &[f64]) -> Option<usize> {
        self.entries.iter().position(|e| {
            let stored = self.slab.get(e.signature);
            stored.len() == signature.len()
                && stored
                    .iter()
                    .zip(signature)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    }

    fn insert(&mut self, signature: &[f64], seen_anchors: u32, resolved: Option<(f64, u32)>) {
        if self.entries.len() < MEMO_CAPACITY {
            self.entries.push(MemoEntry {
                signature: self.slab.alloc(signature),
                seen_anchors,
                resolved,
            });
        } else {
            let slot = &mut self.entries[self.cursor];
            slot.signature = self.slab.overwrite(slot.signature, signature);
            slot.seen_anchors = seen_anchors;
            slot.resolved = resolved;
            self.cursor = (self.cursor + 1) % MEMO_CAPACITY;
        }
    }

    /// Drains the bytes the memo's slab served from retained memory (the
    /// `scratch_bytes_saved` flight-recorder counter).
    pub fn take_bytes_saved(&mut self) -> u64 {
        self.slab.take_bytes_saved()
    }

    /// Memoized signatures currently held (diagnostic surface).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Debug, Default, Clone)]
struct NamespaceState {
    anchors: AnchorSet,
    entries: FlatMap<EntryKey, StoredEntry>,
    /// The shard's [`ShardState::mutation_clock`] value at this namespace's
    /// last mutation. Incremental delta capture compares it against the
    /// cursor's recorded value to decide whether the namespace changed since
    /// the previous checkpoint. `0` means "never mutated since creation".
    version: u64,
}

impl NamespaceState {
    fn resolve_or_create(&mut self, signature: &[f64], tolerance: f64, created: &mut u64) -> u32 {
        if let Some(id) = self.anchors.resolve(signature, tolerance, &mut 0) {
            return id;
        }
        *created += 1;
        self.anchors.push(signature, tolerance)
    }
}

#[derive(Debug, Default)]
struct ShardState {
    /// Namespaces are held through `Arc`s so publishing a read snapshot is
    /// one map-of-pointers clone; write paths mutate through
    /// [`Arc::make_mut`], cloning a namespace only when the published
    /// generation still references it (at most once per namespace per
    /// publish interval).
    namespaces: FlatMap<u64, Arc<NamespaceState>>,
    /// Monotone mutation stamp source for delta capture: bumped on every
    /// namespace mutation under the write lock and **never reset** — not
    /// even when a lost shard is wiped and re-seeded — so a namespace
    /// version is unique per distinct state and a capture cursor can never
    /// mistake a re-mutated namespace for an unchanged one (ABA).
    mutation_clock: u64,
}

/// A wait-free single-writer snapshot cell: readers run against the most
/// recently published value without ever blocking; writers (serialized
/// externally, by the shard write lock) publish a new value and wait only
/// for stragglers still pinning the slot being recycled.
///
/// Two slots alternate as the active value. A reader pins the active slot
/// (increments its pin count), re-checks that the slot is still the active
/// one (a publish may have raced the pin), reads through the pin, and
/// unpins. A writer stages the new value into the *inactive* slot —
/// spinning until readers still pinning it drain — then flips `active`.
/// All the cell's atomics are sequentially consistent, which closes the
/// classic recycling race: for a reader's re-check to pass, the flip that
/// activated the slot must be ordered before it, so the staging write is
/// visible in full; and once the reader's pin is visible, the writer will
/// not restage that slot until the pin drops.
///
/// Readers retry only when a publish flips slots between their load and
/// pin — publishes are commit-grained, so the read path is wait-free in
/// practice and never takes a lock. The writer may briefly spin on a
/// reader's pin, which is the right side of the bargain for a read-mostly
/// store.
struct SnapCell<T> {
    active: AtomicUsize,
    pins: [AtomicUsize; 2],
    slots: [UnsafeCell<Arc<T>>; 2],
}

// Readers on any thread dereference a slot's Arc under a pin; the writer
// only restages a slot that is inactive and unpinned.
unsafe impl<T: Send + Sync> Send for SnapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapCell<T> {}

impl<T> SnapCell<T> {
    fn new(initial: Arc<T>) -> Self {
        SnapCell {
            active: AtomicUsize::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            slots: [
                UnsafeCell::new(Arc::clone(&initial)),
                UnsafeCell::new(initial),
            ],
        }
    }

    /// Runs `f` against the current published value without blocking.
    fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let mut f = Some(f);
        loop {
            let idx = self.active.load(SeqCst);
            self.pins[idx].fetch_add(1, SeqCst);
            if self.active.load(SeqCst) == idx {
                // Pinned while active: the writer recycles a slot only
                // after observing zero pins, so the value stays intact for
                // the duration of `f`.
                let value = unsafe { &*self.slots[idx].get() };
                let out = (f.take().expect("at most one success"))(value);
                self.pins[idx].fetch_sub(1, SeqCst);
                return out;
            }
            // A publish flipped slots between the load and the pin; undo
            // the pin and retry against the new active slot.
            self.pins[idx].fetch_sub(1, SeqCst);
        }
    }

    /// Publishes `value` as the new active snapshot. Callers must be
    /// serialized (the shard write lock); waits for readers still pinning
    /// the slot being recycled.
    fn publish(&self, value: Arc<T>) {
        let next = 1 - self.active.load(SeqCst);
        while self.pins[next].load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        unsafe {
            *self.slots[next].get() = value;
        }
        self.active.store(next, SeqCst);
    }
}

impl<T> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell").finish_non_exhaustive()
    }
}

/// The published, read-side image of one shard: its namespace map at the
/// last write-path publish.
type ReadSnapshot = FlatMap<u64, Arc<NamespaceState>>;

#[derive(Debug)]
struct Shard {
    state: RwLock<ShardState>,
    counters: ShardCounters,
    /// The wait-free read image; republished under the write lock at the
    /// end of every write path, so outside a writer's critical section it
    /// is always identical to `state.namespaces`.
    published: SnapCell<ReadSnapshot>,
    /// Earliest `tuned_at` any live entry of this shard may have (IEEE bits
    /// of a non-negative `f64`; `+inf` = provably empty). A conservative
    /// lower bound maintained by `fetch_min` on writes and recomputed
    /// exactly by sweeps: the TTL sweep skips the shard's write lock
    /// entirely while `now - watermark ≤ ttl`, since no entry can be stale.
    earliest_tuned: AtomicU64,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            state: RwLock::new(ShardState::default()),
            counters: ShardCounters::default(),
            published: SnapCell::new(Arc::new(FlatMap::new())),
            earliest_tuned: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

impl Shard {
    /// Republishes the shard's namespace map to the wait-free read cell.
    /// Must be called with the shard write lock held — writers are the
    /// cell's only publishers and the lock serializes them.
    fn publish(&self, state: &ShardState) {
        self.published.publish(Arc::new(state.namespaces.clone()));
    }

    /// Lowers the earliest-expiry watermark to cover an entry tuned at
    /// `tuned_at` (non-negative `f64` bits order like the floats, so
    /// integer `fetch_min` is a numeric min).
    fn note_tuned_at(&self, tuned_at: SimTime) {
        self.earliest_tuned
            .fetch_min(tuned_at.as_secs().max(0.0).to_bits(), Relaxed);
    }
}

/// Relative per-dimension distance between two signatures, normalized so that
/// "x% apart in every metric" yields roughly `x/100` regardless of metric
/// magnitudes. Signatures of different lengths never match.
pub fn normalized_distance(a: &[f64], b: &[f64]) -> f64 {
    normalized_distance_within(a, b, f64::INFINITY).unwrap_or(f64::INFINITY)
}

/// Early-exit form of [`normalized_distance`]: returns the distance if it is
/// at most `limit`, or `None` if it exceeds `limit` — bailing out of the
/// accumulation as soon as the partial sum proves the outcome. Acceptance is
/// decided on the final `sqrt(sum/n)` value itself, so the returned distance
/// and the accept/reject outcome always agree with computing
/// `normalized_distance(a, b)` under the same kernel mode and comparing it
/// with `limit`.
///
/// The per-dimension accumulation runs on the mode-dispatched kernels of
/// [`dejavu_ml::kernels`]: lane-parallel chunked by default (the independent
/// per-dimension divides are what the vector units want), or the historical
/// exact serial order process-wide under `DEJAVU_EXACT_KERNELS` — the
/// fallback the bit-exact golden tests run under.
pub fn normalized_distance_within(a: &[f64], b: &[f64], limit: f64) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    // Conservative bail-out: d ≤ limit implies sum ≤ limit²·n up to a few
    // ulps of the division/sqrt chain, so inflate the bound slightly — the
    // exact `d ≤ limit` test below is the authoritative decision, and the
    // inflation only means a borderline candidate completes its accumulation.
    let bound = limit * limit * a.len() as f64 * (1.0 + 1e-12);
    let sum = dejavu_ml::kernels::normalized_sq_sum(a, b, MAG_FLOOR, bound)?;
    let d = (sum / a.len() as f64).sqrt();
    if d <= limit {
        Some(d)
    } else {
        None
    }
}

/// Stable namespace id for tenants that can share entries: same service kind,
/// same request mix (quantized) and same allocation space.
pub fn namespace_for(kind: ServiceKind, mix: RequestMix, space: &AllocationSpace) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(match kind {
        ServiceKind::Cassandra => 1,
        ServiceKind::SpecWeb => 2,
        ServiceKind::Rubis => 3,
    });
    for b in ((mix.read_fraction() * 1000.0).round() as u32).to_le_bytes() {
        eat(b);
    }
    for c in space.candidates() {
        for b in c.count().to_le_bytes() {
            eat(b);
        }
        for b in (c.capacity_units().to_bits()).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Deterministic namespace → shard routing, as a pure function of the shard
/// count. Shared with the snapshot layer so delta application can keep
/// `RepoSnapshot::namespaces` in the same (shard, namespace id) order the
/// encoder emits.
pub fn shard_of_namespace(namespace: u64, shards: usize) -> usize {
    // SplitMix64 finalizer: spreads consecutive namespace ids.
    let mut z = namespace.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    (z % shards.max(1) as u64) as usize
}

/// Per-shard change cursor for incremental delta capture: remembers, per
/// namespace, the mutation-clock stamp last checkpointed, so each
/// [`SharedSignatureRepository::capture_shard_delta`] carries only the
/// namespaces that actually changed since the previous capture. One cursor
/// belongs to one shard of one repository; sharing it across shards would
/// conflate their independent mutation clocks.
#[derive(Debug, Default, Clone)]
pub struct DeltaCursor {
    seen: std::collections::HashMap<u64, u64>,
}

impl DeltaCursor {
    /// Forgets one namespace's checkpointed stamp, forcing the next
    /// [`SharedSignatureRepository::capture_shard_delta`] through this
    /// cursor to carry the namespace's full current image even though its
    /// mutation clock has not moved. The serving layer needs this for
    /// read-path hit accounting: a wire `Lookup` bumps entry hit counters
    /// through relaxed atomics without touching the namespace's mutation
    /// clock (the read path is wait-free), so a durable capture that should
    /// persist those counters must be told about the namespace explicitly.
    pub fn invalidate(&mut self, namespace: u64) {
        self.seen.remove(&namespace);
    }
}

/// The fleet-shared, sharded signature repository.
pub struct SharedSignatureRepository {
    shards: Vec<Shard>,
    config: SharedRepoConfig,
    /// High-water mark of the global fleet times this repository has seen
    /// (IEEE bits of a non-negative `f64`, so `fetch_max` on the bits is a
    /// numeric max). Persisted as the snapshot clock: a warm start resumes
    /// the fleet clock here instead of resetting entry ages to zero.
    clock: AtomicU64,
    /// The flight recorder the repository's hot paths record into
    /// (lookup/peek/publish latency, ball-tree visits, memo hit rate).
    /// Disabled by default: probes fold to a null check and never influence
    /// results, so runs are bit-identical with obs on or off.
    recorder: Recorder,
}

impl std::fmt::Debug for SharedSignatureRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSignatureRepository")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

impl SharedSignatureRepository {
    /// Creates an empty repository with the given sharding configuration.
    pub fn new(config: SharedRepoConfig) -> Self {
        let shards = config.shards.max(1);
        SharedSignatureRepository {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            config,
            clock: AtomicU64::new(0.0f64.to_bits()),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a flight recorder to the repository's instrumented hot
    /// paths. Call before sharing the repository (it consumes `self`);
    /// clones of one recorder share storage, so the same handle can also be
    /// given to the fleet engine via `FleetConfig::recorder`.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The recorder attached via [`Self::with_recorder`] (disabled by
    /// default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Advances the repository's clock high-water mark to at least `now`.
    fn advance_clock(&self, now: SimTime) {
        self.clock
            .fetch_max(now.as_secs().max(0.0).to_bits(), Relaxed);
    }

    /// The latest global fleet time the repository has seen (via inserts,
    /// commits and TTL sweeps). [`FleetEngine::run_on`](crate::FleetEngine)
    /// resumes a warm-started fleet's clock here.
    pub fn clock(&self) -> SimTime {
        SimTime::from_secs(f64::from_bits(self.clock.load(Relaxed)))
    }

    /// The configuration the repository was built with.
    pub fn config(&self) -> &SharedRepoConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard routing: every key of `namespace` lives in the
    /// returned shard, so one lock covers anchor resolution plus the entry.
    pub fn shard_index(&self, namespace: u64) -> usize {
        shard_of_namespace(namespace, self.shards.len())
    }

    fn is_stale(&self, tuned_at: SimTime, now: SimTime) -> bool {
        match self.config.ttl {
            Some(ttl) => now.saturating_since(tuned_at).as_secs() > ttl.as_secs(),
            None => false,
        }
    }

    /// Inserts an allocation decision, creating an anchor for the signature
    /// if none matches. Thread-safe; takes the shard write lock.
    ///
    /// When a fresh entry already exists at the same anchor × bucket, the
    /// larger allocation wins — mirroring the controller's max-over-members
    /// seeding policy, so a tenant tuned against a slightly lighter workload
    /// within the anchor tolerance cannot silently shrink an entry other
    /// tenants rely on. The tuning time still advances (the entry was
    /// reconfirmed), and reuse counters survive.
    pub fn insert(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        allocation: ResourceAllocation,
        tuned_at: SimTime,
    ) {
        self.advance_clock(tuned_at);
        let started = self.recorder.start();
        let shard = &self.shards[self.shard_index(namespace)];
        let mut state = shard
            .state
            .write()
            .expect("shared repository shard poisoned");
        Self::insert_locked(
            &mut state,
            shard,
            &self.config,
            tenant,
            namespace,
            signature,
            interference_bucket,
            allocation,
            tuned_at,
        );
        shard.publish(&state);
        self.recorder.observe(started, |m| &m.publish_ns);
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_locked(
        state: &mut ShardState,
        shard: &Shard,
        config: &SharedRepoConfig,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        allocation: ResourceAllocation,
        tuned_at: SimTime,
    ) {
        let counters = &shard.counters;
        let mut created = 0u64;
        state.mutation_clock += 1;
        let stamp = state.mutation_clock;
        let ns = Arc::make_mut(
            state
                .namespaces
                .get_mut_or_insert_with(namespace, || Arc::new(NamespaceState::default())),
        );
        ns.version = stamp;
        let anchor = ns.resolve_or_create(signature, config.match_tolerance, &mut created);
        let key = EntryKey {
            anchor,
            interference_bucket,
        };
        match ns.entries.get_mut(&key) {
            Some(existing) => {
                let stale = match config.ttl {
                    Some(ttl) => {
                        tuned_at.saturating_since(existing.tuned_at).as_secs() > ttl.as_secs()
                    }
                    None => false,
                };
                if stale || allocation.capacity_units() >= existing.allocation.capacity_units() {
                    existing.allocation = allocation;
                    existing.owner = tenant;
                }
                existing.tuned_at = existing.tuned_at.max(tuned_at);
            }
            None => {
                ns.entries.insert(
                    key,
                    StoredEntry {
                        allocation,
                        tuned_at,
                        owner: tenant,
                        hits: Arc::new(AtomicU64::new(0)),
                        cross_tenant_hits: Arc::new(AtomicU64::new(0)),
                    },
                );
            }
        }
        // `tuned_at` lower-bounds the written entry's final tuning time, so
        // the watermark stays a conservative earliest-expiry bound.
        shard.note_tuned_at(tuned_at);
        counters.insertions.inc();
        counters.anchors_created.add(created);
    }

    /// Looks up the entry matching `signature` × `interference_bucket`,
    /// counting hit/miss and reuse statistics. Thread-safe and
    /// **wait-free**: resolves against the shard's published snapshot
    /// instead of its lock — statistics move through relaxed atomics shared
    /// across snapshot generations, and a stale entry merely misses (the
    /// epoch TTL sweep evicts it later), so concurrent lookups never block
    /// on each other or on a committer mid-write.
    pub fn lookup(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
    ) -> Option<SharedEntry> {
        let started = self.recorder.start();
        let mut probes = 0u64;
        let shard = &self.shards[self.shard_index(namespace)];
        let snapshot = shard.published.with(|namespaces| {
            let entry = namespaces
                .get(&namespace)
                .and_then(|ns| {
                    ns.anchors
                        .resolve(signature, self.config.match_tolerance, &mut probes)
                        .map(|anchor| (ns, anchor))
                })
                .and_then(|(ns, anchor)| {
                    ns.entries.get(&EntryKey {
                        anchor,
                        interference_bucket,
                    })
                })
                // A stale entry misses; eviction is the TTL sweep's job.
                .filter(|entry| !self.is_stale(entry.tuned_at, now))?;
            let hits = entry.hits.fetch_add(1, Relaxed) + 1;
            shard.counters.hits.inc();
            let mut snapshot = entry.snapshot();
            snapshot.hits = hits;
            if entry.owner != tenant {
                snapshot.cross_tenant_hits = entry.cross_tenant_hits.fetch_add(1, Relaxed) + 1;
                shard.counters.cross_tenant_hits.inc();
            }
            Some(snapshot)
        });
        self.recorder.observe(started, |m| &m.lookup_ns);
        self.recorder.with(|m| m.tree_visits.record(probes));
        if snapshot.is_none() {
            shard.counters.misses.inc();
        }
        snapshot
    }

    /// Read-only lookup for the epoch-buffered tenant views: no statistics
    /// move, entries owned by `exclude_owner` are invisible (a tenant's own
    /// entries live in its local overlay), stale entries are filtered but not
    /// evicted. Wait-free: reads the shard's published snapshot, so an
    /// epoch's worth of concurrent tenant reads never serialize — not even
    /// against a committer holding the shard write lock.
    pub fn peek(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
    ) -> Option<SharedEntry> {
        self.peek_resolved(
            namespace,
            signature,
            interference_bucket,
            now,
            exclude_owner,
        )
        .map(|(entry, _)| entry)
    }

    /// [`peek`](Self::peek), additionally returning the `(anchor id, anchor
    /// count, distance)` the resolution went through — the witness a buffered
    /// [`PendingOp::RecordHit`] carries so the epoch commit only has to check
    /// anchors created after the peek instead of re-resolving the namespace.
    pub fn peek_resolved(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
    ) -> Option<(SharedEntry, (u32, u32, f64))> {
        let started = self.recorder.start();
        let mut probes = 0u64;
        let result = self.shards[self.shard_index(namespace)]
            .published
            .with(|namespaces| {
                let ns = namespaces.get(&namespace)?;
                let resolution = ns.anchors.resolve_with_distance(
                    signature,
                    self.config.match_tolerance,
                    &mut probes,
                )?;
                self.peek_entry(ns, resolution, interference_bucket, now, exclude_owner)
            });
        self.recorder.observe(started, |m| &m.peek_ns);
        self.recorder.with(|m| m.tree_visits.record(probes));
        result
    }

    /// Shared tail of both peek paths: entry lookup, staleness and
    /// owner-exclusion filtering, snapshot + witness construction for an
    /// already-resolved `(distance, anchor)`. One implementation keeps the
    /// cached and uncached peeks semantically identical by construction.
    fn peek_entry(
        &self,
        ns: &NamespaceState,
        (distance, anchor): (f64, u32),
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
    ) -> Option<(SharedEntry, (u32, u32, f64))> {
        let entry = ns.entries.get(&EntryKey {
            anchor,
            interference_bucket,
        })?;
        if self.is_stale(entry.tuned_at, now) {
            return None;
        }
        if exclude_owner == Some(entry.owner) {
            return None;
        }
        Some((entry.snapshot(), (anchor, ns.anchors.count, distance)))
    }

    /// [`peek_resolved`](Self::peek_resolved) with the anchor resolution
    /// served through a caller-held [`ResolveMemo`] — the hot path for
    /// controllers that peek the same class-medoid signatures tick after
    /// tick. Answers (and witnesses) are bit-identical to the uncached path;
    /// only the work of re-deriving them is skipped.
    pub fn peek_resolved_cached(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
        memo: &mut ResolveMemo,
    ) -> Option<(SharedEntry, (u32, u32, f64))> {
        memo.bind(namespace);
        let started = self.recorder.start();
        // The memo-hit probe re-runs the (≤ 32-entry) memo scan, but only
        // with obs enabled — the disabled path never touches it.
        self.recorder.with(|m| {
            if memo.find(signature).is_some() {
                m.memo_hits.inc();
            } else {
                m.memo_misses.inc();
            }
        });
        let mut probes = 0u64;
        let result = self.shards[self.shard_index(namespace)]
            .published
            .with(|namespaces| {
                let ns = namespaces.get(&namespace)?;
                let resolution = ns.anchors.resolve_memoized(
                    signature,
                    self.config.match_tolerance,
                    memo,
                    &mut probes,
                )?;
                self.peek_entry(ns, resolution, interference_bucket, now, exclude_owner)
            });
        self.recorder.observe(started, |m| &m.peek_ns);
        self.recorder.with(|m| {
            m.tree_visits.record(probes);
            m.scratch_bytes_saved.add(memo.take_bytes_saved());
        });
        result
    }

    /// Resolves `signature` to its anchor id within `namespace`, if any
    /// anchor lies within the configured match tolerance. Diagnostic /
    /// testing surface for the indexed resolution: results are exactly those
    /// of a brute-force nearest-anchor scan with ties broken toward the
    /// lowest anchor id.
    pub fn resolve_anchor(&self, namespace: u64, signature: &[f64]) -> Option<u32> {
        self.shards[self.shard_index(namespace)]
            .published
            .with(|namespaces| {
                namespaces.get(&namespace)?.anchors.resolve(
                    signature,
                    self.config.match_tolerance,
                    &mut 0,
                )
            })
    }

    /// Applies a buffered operation (epoch-barrier commit path). Returns true
    /// if the operation took effect — in particular, whether a `RecordHit`
    /// still found its entry (a publish committed earlier in the same barrier
    /// can re-anchor the namespace, in which case the hit is not recorded and
    /// the caller must not count it either).
    pub fn apply(&self, op: &PendingOp) -> bool {
        if let PendingOp::Publish { tuned_at, .. } = op {
            self.advance_clock(*tuned_at);
        }
        let started = matches!(op, PendingOp::Publish { .. })
            .then(|| self.recorder.start())
            .flatten();
        let shard = &self.shards[self.shard_index(op.namespace())];
        let mut state = shard
            .state
            .write()
            .expect("shared repository shard poisoned");
        let applied = Self::apply_locked(&mut state, shard, &self.config, op);
        shard.publish(&state);
        self.recorder.observe(started, |m| &m.publish_ns);
        applied
    }

    /// Applies a whole epoch's buffered operations, grouped so each shard's
    /// write lock is taken **once** rather than once per operation. Within a
    /// shard, operations apply in their order in `ops` (the fleet engine
    /// passes them in tenant order), and operations on different shards touch
    /// disjoint namespaces, so the outcome is identical to applying `ops`
    /// sequentially. Returns one applied-flag per operation, in input order.
    pub fn apply_batch(&self, ops: &[PendingOp]) -> Vec<bool> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, op) in ops.iter().enumerate() {
            if let PendingOp::Publish { tuned_at, .. } = op {
                self.advance_clock(*tuned_at);
            }
            by_shard[self.shard_index(op.namespace())].push(i);
        }
        let mut applied = vec![false; ops.len()];
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut state = shard
                .state
                .write()
                .expect("shared repository shard poisoned");
            for i in indices {
                let started = matches!(ops[i], PendingOp::Publish { .. })
                    .then(|| self.recorder.start())
                    .flatten();
                applied[i] = Self::apply_locked(&mut state, shard, &self.config, &ops[i]);
                self.recorder.observe(started, |m| &m.publish_ns);
            }
            shard.publish(&state);
        }
        applied
    }

    fn apply_locked(
        state: &mut ShardState,
        shard: &Shard,
        config: &SharedRepoConfig,
        op: &PendingOp,
    ) -> bool {
        let counters = &shard.counters;
        match op {
            PendingOp::Publish {
                tenant,
                namespace,
                signature,
                interference_bucket,
                allocation,
                tuned_at,
            } => {
                Self::insert_locked(
                    state,
                    shard,
                    config,
                    *tenant,
                    *namespace,
                    signature,
                    *interference_bucket,
                    *allocation,
                    *tuned_at,
                );
                true
            }
            PendingOp::RecordHit {
                tenant,
                namespace,
                signature,
                interference_bucket,
                resolved,
            } => {
                state.mutation_clock += 1;
                let stamp = state.mutation_clock;
                let Some(ns) = state.namespaces.get_mut(namespace) else {
                    return false;
                };
                let ns = Arc::make_mut(ns);
                // Reuse the peek-time resolution: anchors only accrete and
                // distance ties go to older (lower) ids, so the witnessed
                // anchor can only be displaced by a strictly closer anchor
                // created since the peek — check just that delta.
                let anchor = match resolved {
                    Some((anchor, count, distance)) => {
                        match ns.anchors.resolve_since(
                            signature,
                            config.match_tolerance,
                            *count,
                            &mut 0,
                        ) {
                            Some((d_new, a_new)) if d_new < *distance => Some(a_new),
                            _ => Some(*anchor),
                        }
                    }
                    None => ns
                        .anchors
                        .resolve(signature, config.match_tolerance, &mut 0),
                };
                let Some(anchor) = anchor else {
                    return false;
                };
                let Some(entry) = ns.entries.get(&EntryKey {
                    anchor,
                    interference_bucket: *interference_bucket,
                }) else {
                    return false;
                };
                entry.hits.fetch_add(1, Relaxed);
                counters.hits.inc();
                if entry.owner != *tenant {
                    entry.cross_tenant_hits.fetch_add(1, Relaxed);
                    counters.cross_tenant_hits.inc();
                }
                // The hit counters live inside the namespace's entries, so a
                // recorded hit is a namespace change for delta capture.
                ns.version = stamp;
                true
            }
            PendingOp::RecordMiss { .. } => {
                counters.misses.inc();
                true
            }
        }
    }

    /// Removes every entry older than the configured TTL. Returns how many
    /// entries were evicted. Advances the repository clock either way; the
    /// eviction itself is a no-op without a TTL.
    ///
    /// This sweep is the only place stale entries leave the store: the read
    /// path treats them as misses but does not evict, so it can run under the
    /// shard read lock.
    pub fn evict_stale(&self, now: SimTime) -> u64 {
        self.advance_clock(now);
        let Some(ttl) = self.config.ttl else { return 0 };
        self.shards
            .iter()
            .map(|shard| Self::sweep_shard(shard, ttl, now))
            .sum()
    }

    /// [`evict_stale`](Self::evict_stale) for a single shard: the hook the
    /// per-shard commit frontiers use, so a shard whose epoch batch committed
    /// ahead of the rest of the fleet is swept **at its own frontier's
    /// timestamp** instead of at the (earlier) fleet-wide epoch — otherwise a
    /// buffered cross-tenant hit committing in the shard's next epoch could
    /// land on an entry the fleet-wide sweep should already have reclaimed,
    /// resurrecting it in the statistics. Entries in other shards are
    /// untouched.
    pub fn evict_stale_shard(&self, shard: usize, now: SimTime) -> u64 {
        self.advance_clock(now);
        let Some(ttl) = self.config.ttl else { return 0 };
        Self::sweep_shard(&self.shards[shard], ttl, now)
    }

    fn sweep_shard(shard: &Shard, ttl: SimDuration, now: SimTime) -> u64 {
        // Clean-shard fast path: the watermark lower-bounds every live
        // entry's `tuned_at`, so while even the watermark is within TTL the
        // sweep provably evicts nothing — skip the write lock entirely.
        // (`+inf` marks a shard with no entries at all.) Bit-identical to
        // always sweeping: a skipped sweep evicts 0 and mutates nothing,
        // exactly what the full pass would have done.
        let watermark = f64::from_bits(shard.earliest_tuned.load(Relaxed));
        if !watermark.is_finite()
            || now
                .saturating_since(SimTime::from_secs(watermark))
                .as_secs()
                <= ttl.as_secs()
        {
            return 0;
        }
        let mut state = shard
            .state
            .write()
            .expect("shared repository shard poisoned");
        let state = &mut *state;
        let mut evicted = 0u64;
        let mut earliest = f64::INFINITY;
        for ns in state.namespaces.values_mut() {
            // Copy-on-write discipline: only namespaces that actually lose
            // an entry are cloned away from the published generation.
            let stale = ns
                .entries
                .values()
                .any(|e| now.saturating_since(e.tuned_at).as_secs() > ttl.as_secs());
            if stale {
                let ns = Arc::make_mut(ns);
                let before = ns.entries.len();
                ns.entries
                    .retain(|_, e| now.saturating_since(e.tuned_at).as_secs() <= ttl.as_secs());
                let gone = (before - ns.entries.len()) as u64;
                if gone > 0 {
                    state.mutation_clock += 1;
                    ns.version = state.mutation_clock;
                }
                evicted += gone;
            }
            for e in ns.entries.values() {
                earliest = earliest.min(e.tuned_at.as_secs());
            }
        }
        // The sweep visited every entry anyway: reset the watermark to the
        // exact minimum so monotone `fetch_min` drift can't accrete.
        shard
            .earliest_tuned
            .store(earliest.max(0.0).to_bits(), Relaxed);
        shard.counters.evictions.add(evicted);
        if evicted > 0 {
            shard.publish(state);
        }
        evicted
    }

    /// Total number of entries across all shards (wait-free, from the
    /// published snapshots).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.published.with(|namespaces| {
                    namespaces
                        .values()
                        .map(|ns| ns.entries.len())
                        .sum::<usize>()
                })
            })
            .sum()
    }

    /// Returns true if no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of anchors (distinct workload classes) across all shards
    /// (wait-free, from the published snapshots).
    pub fn anchor_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.published.with(|namespaces| {
                    namespaces
                        .values()
                        .map(|ns| ns.anchors.len())
                        .sum::<usize>()
                })
            })
            .sum()
    }

    /// Per-shard statistics snapshot.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.counters.snapshot()).collect()
    }

    /// Captures the complete repository state as plain data — configuration,
    /// every namespace's anchors and entries, per-shard statistics. Meant to
    /// be taken between epochs (no writers in flight); the φ-space anchor
    /// index is not captured (it is rebuilt on restore).
    pub fn to_snapshot(&self) -> crate::snapshot::RepoSnapshot {
        let mut namespaces = Vec::new();
        for shard in &self.shards {
            let state = shard
                .state
                .read()
                .expect("shared repository shard poisoned");
            for (&ns_id, ns) in state.namespaces.iter() {
                namespaces.push(Self::snapshot_namespace(ns_id, ns));
            }
        }
        crate::snapshot::RepoSnapshot {
            shards: self.shards.len(),
            match_tolerance: self.config.match_tolerance,
            ttl_secs: self.config.ttl.map(|d| d.as_secs()),
            clock_secs: self.clock().as_secs(),
            namespaces,
            shard_stats: self.shard_stats(),
        }
    }

    /// Plain-data image of one namespace (shared by the full snapshot and
    /// the incremental delta capture).
    fn snapshot_namespace(ns_id: u64, ns: &NamespaceState) -> crate::snapshot::NamespaceSnapshot {
        let entries = ns
            .entries
            .iter()
            .map(|(key, e)| crate::snapshot::EntrySnapshot {
                anchor: key.anchor,
                bucket: key.interference_bucket,
                allocation: e.allocation,
                tuned_at_secs: e.tuned_at.as_secs(),
                owner: e.owner,
                hits: e.hits.load(Relaxed),
                cross_tenant_hits: e.cross_tenant_hits.load(Relaxed),
            })
            .collect();
        crate::snapshot::NamespaceSnapshot {
            id: ns_id,
            anchors: ns.anchors.snapshot_anchors(),
            entries,
        }
    }

    /// Rebuilds one namespace's live state from its snapshot image (shared
    /// by full restore, delta application and shard re-seeding).
    fn namespace_state_from_snapshot(
        ns_snap: &crate::snapshot::NamespaceSnapshot,
        match_tolerance: f64,
    ) -> Result<NamespaceState, crate::snapshot::SnapshotError> {
        let inconsistent =
            |message: String| crate::snapshot::SnapshotError::Inconsistent { message };
        let anchors = AnchorSet::restore(&ns_snap.anchors, match_tolerance)
            .map_err(|e| inconsistent(format!("namespace {}: {e}", ns_snap.id)))?;
        let mut entries = FlatMap::new();
        for e in &ns_snap.entries {
            if e.anchor as usize >= ns_snap.anchors.len() {
                return Err(inconsistent(format!(
                    "namespace {}: entry references unknown anchor {}",
                    ns_snap.id, e.anchor
                )));
            }
            let key = EntryKey {
                anchor: e.anchor,
                interference_bucket: e.bucket,
            };
            let stored = StoredEntry {
                allocation: e.allocation,
                tuned_at: SimTime::from_secs(e.tuned_at_secs),
                owner: e.owner,
                hits: Arc::new(AtomicU64::new(e.hits)),
                cross_tenant_hits: Arc::new(AtomicU64::new(e.cross_tenant_hits)),
            };
            if entries.insert(key, stored).is_some() {
                return Err(inconsistent(format!(
                    "namespace {}: duplicate entry {} × {}",
                    ns_snap.id, e.anchor, e.bucket
                )));
            }
        }
        Ok(NamespaceState {
            anchors,
            entries,
            version: 0,
        })
    }

    /// Reconstructs a repository from a snapshot. The restored repository is
    /// behaviorally bit-identical to the one the snapshot was taken from:
    /// `resolve`/`lookup`/`peek` answers, statistics and all subsequent
    /// operations proceed exactly as they would have on the original
    /// (property-tested in `tests/properties.rs`).
    pub fn from_snapshot(
        snapshot: &crate::snapshot::RepoSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let inconsistent =
            |message: String| crate::snapshot::SnapshotError::Inconsistent { message };
        if snapshot.shards == 0 || snapshot.shards > crate::snapshot::MAX_SHARDS {
            return Err(inconsistent(format!(
                "shard count {} outside 1..={}",
                snapshot.shards,
                crate::snapshot::MAX_SHARDS
            )));
        }
        if snapshot.shard_stats.len() != snapshot.shards {
            return Err(inconsistent(format!(
                "{} shard stat records for {} shards",
                snapshot.shard_stats.len(),
                snapshot.shards
            )));
        }
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: snapshot.shards,
            ttl: snapshot.ttl_secs.map(SimDuration::from_secs),
            match_tolerance: snapshot.match_tolerance,
        });
        repo.advance_clock(SimTime::from_secs(snapshot.clock_secs));
        for ns_snap in &snapshot.namespaces {
            let ns_state = Self::namespace_state_from_snapshot(ns_snap, snapshot.match_tolerance)?;
            let shard = &repo.shards[repo.shard_index(ns_snap.id)];
            for e in ns_state.entries.values() {
                shard.note_tuned_at(e.tuned_at);
            }
            let mut state = shard
                .state
                .write()
                .expect("shared repository shard poisoned");
            let prior = state.namespaces.insert(ns_snap.id, Arc::new(ns_state));
            if prior.is_some() {
                return Err(inconsistent(format!("duplicate namespace {}", ns_snap.id)));
            }
        }
        for (shard, stats) in repo.shards.iter().zip(&snapshot.shard_stats) {
            shard.counters.restore(stats);
            let state = shard
                .state
                .read()
                .expect("shared repository shard poisoned");
            shard.publish(&state);
        }
        Ok(repo)
    }

    /// Serializes the repository to the versioned snapshot text format
    /// (see [`crate::snapshot`]). Deterministic: identical repository states
    /// produce byte-identical snapshots.
    pub fn save_snapshot(&self) -> String {
        let text = crate::snapshot::encode(&self.to_snapshot());
        self.recorder.event(|| Event::SnapshotSave {
            bytes: text.len() as u64,
        });
        text
    }

    /// [`save_snapshot`](Self::save_snapshot) with compaction: entries that
    /// never served a lookup are dropped before serializing
    /// ([`crate::snapshot::RepoSnapshot::compact`]), trimming the dead
    /// weight a long-lived fleet cache accretes from one-off workloads.
    /// Anchors survive compaction (restore requires dense anchor ids, and
    /// recurring workloads re-publish under them), as do all statistics.
    pub fn save_snapshot_compact(&self) -> String {
        let mut snapshot = self.to_snapshot();
        snapshot.compact();
        let text = crate::snapshot::encode(&snapshot);
        self.recorder.event(|| Event::SnapshotSave {
            bytes: text.len() as u64,
        });
        text
    }

    /// Loads a repository from snapshot text produced by
    /// [`save_snapshot`](Self::save_snapshot).
    pub fn load_snapshot(text: &str) -> Result<Self, crate::snapshot::SnapshotError> {
        Self::from_snapshot(&crate::snapshot::decode(text)?)
    }

    /// Primes a delta cursor to the shard's **current** state without
    /// building a snapshot: the next [`capture_shard_delta`]
    /// (Self::capture_shard_delta) will carry only changes made after this
    /// call. Pair it with a full base snapshot taken at the same quiescent
    /// point (e.g. run start), so base + deltas reproduce the live state.
    pub fn prime_delta_cursor(&self, shard: usize, cursor: &mut DeltaCursor) {
        let state = self.shards[shard]
            .state
            .read()
            .expect("shared repository shard poisoned");
        cursor.seen.clear();
        for (&ns_id, ns) in state.namespaces.iter() {
            cursor.seen.insert(ns_id, ns.version);
        }
    }

    /// Captures an incremental checkpoint of one shard: full replacement
    /// images of every namespace mutated since `cursor` was last updated,
    /// plus the shard's statistics counters and the clock high-water mark.
    /// Takes only the shard **read** lock — meant to run on the committer
    /// thread right after the shard's epoch commit and TTL sweep, when no
    /// writer can race it.
    pub fn capture_shard_delta(
        &self,
        shard: usize,
        epoch: usize,
        cursor: &mut DeltaCursor,
    ) -> crate::snapshot::DeltaSnapshot {
        let state = self.shards[shard]
            .state
            .read()
            .expect("shared repository shard poisoned");
        let mut namespaces = Vec::new();
        for (&ns_id, ns) in state.namespaces.iter() {
            if cursor.seen.get(&ns_id) != Some(&ns.version) {
                namespaces.push(Self::snapshot_namespace(ns_id, ns));
                cursor.seen.insert(ns_id, ns.version);
            }
        }
        crate::snapshot::DeltaSnapshot {
            shard,
            epoch,
            clock_secs: self.clock().as_secs(),
            namespaces,
            shard_stats: self.shards[shard].counters.snapshot(),
        }
    }

    /// Applies one delta to this repository: replaces the delta's namespaces
    /// wholesale, restores the shard's statistics counters, and advances the
    /// clock. The replay path uses this to advance a materialized repository
    /// epoch by epoch; correctness mirrors [`crate::snapshot::apply_delta`],
    /// but operates on live state under one shard write lock.
    pub fn apply_shard_delta(
        &self,
        delta: &crate::snapshot::DeltaSnapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        if delta.shard >= self.shards.len() {
            return Err(crate::snapshot::SnapshotError::BaseMismatch {
                message: format!(
                    "delta shard {} out of range (repository has {} shards)",
                    delta.shard,
                    self.shards.len()
                ),
            });
        }
        let shard = &self.shards[delta.shard];
        let mut state = shard
            .state
            .write()
            .expect("shared repository shard poisoned");
        let state = &mut *state;
        for ns_snap in &delta.namespaces {
            let routed = self.shard_index(ns_snap.id);
            if routed != delta.shard {
                return Err(crate::snapshot::SnapshotError::BaseMismatch {
                    message: format!(
                        "namespace {} routes to shard {routed}, not the delta's shard {}",
                        ns_snap.id, delta.shard
                    ),
                });
            }
            let mut ns_state =
                Self::namespace_state_from_snapshot(ns_snap, self.config.match_tolerance)?;
            state.mutation_clock += 1;
            ns_state.version = state.mutation_clock;
            for e in ns_state.entries.values() {
                shard.note_tuned_at(e.tuned_at);
            }
            state.namespaces.insert(ns_snap.id, Arc::new(ns_state));
        }
        shard.counters.restore(&delta.shard_stats);
        self.advance_clock(SimTime::from_secs(delta.clock_secs));
        shard.publish(state);
        Ok(())
    }

    /// Wipes one shard and re-seeds it from a full snapshot — the warm
    /// recovery path after shard-level repository loss. Only namespaces that
    /// route to `shard` under this repository's shard count are restored;
    /// the snapshot must have been taken with the same shard count
    /// ([`crate::snapshot::SnapshotError::BaseMismatch`] otherwise). One
    /// write lock covers the wipe and the rebuild, so concurrent readers
    /// never observe a half-seeded shard. The shard's mutation clock
    /// survives the wipe (see [`ShardState::mutation_clock`]).
    pub fn restore_shard(
        &self,
        shard: usize,
        snapshot: &crate::snapshot::RepoSnapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        if snapshot.shards != self.shards.len() {
            return Err(crate::snapshot::SnapshotError::BaseMismatch {
                message: format!(
                    "snapshot has {} shards, repository has {}",
                    snapshot.shards,
                    self.shards.len()
                ),
            });
        }
        if shard >= self.shards.len() {
            return Err(crate::snapshot::SnapshotError::BaseMismatch {
                message: format!(
                    "shard {shard} out of range (repository has {} shards)",
                    self.shards.len()
                ),
            });
        }
        let shard_ref = &self.shards[shard];
        let mut state = shard_ref
            .state
            .write()
            .expect("shared repository shard poisoned");
        let state = &mut *state;
        state.namespaces = FlatMap::new();
        let mut earliest = f64::INFINITY;
        for ns_snap in &snapshot.namespaces {
            if self.shard_index(ns_snap.id) != shard {
                continue;
            }
            let mut ns_state =
                Self::namespace_state_from_snapshot(ns_snap, self.config.match_tolerance)?;
            state.mutation_clock += 1;
            ns_state.version = state.mutation_clock;
            for e in ns_state.entries.values() {
                earliest = earliest.min(e.tuned_at.as_secs());
            }
            state.namespaces.insert(ns_snap.id, Arc::new(ns_state));
        }
        // The wipe replaced every entry: the watermark is known exactly.
        shard_ref
            .earliest_tuned
            .store(earliest.max(0.0).to_bits(), Relaxed);
        shard_ref.counters.restore(&snapshot.shard_stats[shard]);
        self.advance_clock(SimTime::from_secs(snapshot.clock_secs));
        shard_ref.publish(state);
        Ok(())
    }

    /// Holds `shard`'s **write** lock for the duration of `f` — a committer
    /// stalled mid-commit, as far as readers are concerned. Test hook for
    /// the wait-free read path: lookups and peeks against the published
    /// snapshot must complete while `f` blocks the lock.
    pub fn with_shard_exclusive<R>(&self, shard: usize, f: impl FnOnce() -> R) -> R {
        let _guard = self.shards[shard]
            .state
            .write()
            .expect("shared repository shard poisoned");
        f()
    }

    /// Aggregate statistics over every shard.
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> SharedSignatureRepository {
        SharedSignatureRepository::new(SharedRepoConfig::default())
    }

    #[test]
    fn insert_then_lookup_roundtrip() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        let e = r.lookup(1, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(4));
        assert_eq!(e.owner, 0);
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().cross_tenant_hits, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.anchor_count(), 1);
    }

    #[test]
    fn near_signatures_share_an_anchor_far_ones_do_not() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        let near = [103.0, 5.1, 0.305]; // ~3% away
        let far = [160.0, 9.0, 0.8];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        assert!(r.lookup(1, 7, &near, 0, SimTime::ZERO).is_some());
        assert!(r.lookup(1, 7, &far, 0, SimTime::ZERO).is_none());
        r.insert(1, 7, &far, 0, ResourceAllocation::large(8), SimTime::ZERO);
        assert_eq!(r.anchor_count(), 2);
        assert_eq!(
            r.lookup(0, 7, &far, 0, SimTime::ZERO).unwrap().allocation,
            ResourceAllocation::large(8)
        );
    }

    #[test]
    fn overwrite_within_tolerance_keeps_the_larger_allocation() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        let near = [97.0, 4.9, 0.296];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(6), SimTime::ZERO);
        // A smaller allocation tuned against a slightly lighter workload in
        // the same anchor must not shrink the entry others rely on…
        r.insert(
            1,
            7,
            &near,
            0,
            ResourceAllocation::large(4),
            SimTime::from_hours(1.0),
        );
        let e = r.lookup(2, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(6));
        assert_eq!(e.owner, 0);
        assert_eq!(
            e.tuned_at,
            SimTime::from_hours(1.0),
            "entry was reconfirmed"
        );
        // …but a larger one replaces it.
        r.insert(
            1,
            7,
            &near,
            0,
            ResourceAllocation::large(8),
            SimTime::from_hours(2.0),
        );
        let e = r.lookup(2, 7, &sig, 0, SimTime::ZERO).expect("hit");
        assert_eq!(e.allocation, ResourceAllocation::large(8));
        assert_eq!(e.owner, 1);
    }

    #[test]
    fn record_miss_feeds_shard_stats() {
        let r = repo();
        assert!(r.apply(&PendingOp::RecordMiss { namespace: 9 }));
        assert_eq!(r.stats().misses, 1);
    }

    #[test]
    fn delta_capture_tracks_only_changed_namespaces() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        let shard = r.shard_index(7);
        let mut cursor = DeltaCursor::default();
        r.prime_delta_cursor(shard, &mut cursor);

        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        let delta = r.capture_shard_delta(shard, 0, &mut cursor);
        assert_eq!(delta.namespaces.len(), 1, "the insert changed namespace 7");
        assert_eq!(delta.namespaces[0].id, 7);

        // Nothing changed since: the next capture is namespace-empty (it
        // still carries stats and clock, which is what makes it cheap).
        let quiet = r.capture_shard_delta(shard, 1, &mut cursor);
        assert!(quiet.namespaces.is_empty(), "{:?}", quiet.namespaces);

        // A committed hit mutates entry counters inside the namespace.
        assert!(r.apply(&PendingOp::RecordHit {
            tenant: 1,
            namespace: 7,
            signature: sig.to_vec(),
            interference_bucket: 0,
            resolved: None,
        }));
        let hit = r.capture_shard_delta(shard, 2, &mut cursor);
        assert_eq!(hit.namespaces.len(), 1);
        assert_eq!(hit.namespaces[0].entries[0].hits, 1);

        // A miss moves only shard counters — no namespace change.
        assert!(r.apply(&PendingOp::RecordMiss { namespace: 7 }));
        let miss = r.capture_shard_delta(shard, 3, &mut cursor);
        assert!(miss.namespaces.is_empty());
        assert_eq!(miss.shard_stats.misses, 1);
    }

    #[test]
    fn delta_chain_materializes_to_the_live_snapshot() {
        let r = repo();
        let shards = r.shard_count();
        let base = r.to_snapshot();
        let mut cursors: Vec<DeltaCursor> = vec![DeltaCursor::default(); shards];
        for (shard, cursor) in cursors.iter_mut().enumerate() {
            r.prime_delta_cursor(shard, cursor);
        }

        let mut deltas = Vec::new();
        for epoch in 0..3usize {
            for ns in [7u64, 9, 11] {
                let sig = [100.0 + epoch as f64 + ns as f64, 5.0, 0.3];
                r.insert(
                    0,
                    ns,
                    &sig,
                    (epoch % 2) as u32,
                    ResourceAllocation::large(2 + epoch as u32),
                    SimTime::from_hours(epoch as f64),
                );
            }
            assert!(r.apply(&PendingOp::RecordMiss { namespace: 9 }));
            for (shard, cursor) in cursors.iter_mut().enumerate() {
                deltas.push(r.capture_shard_delta(shard, epoch, cursor));
            }
        }

        let materialized =
            crate::snapshot::apply_chain(Some(base), &deltas).expect("chain applies");
        assert_eq!(materialized, r.to_snapshot());
        // And the materialization round-trips the text formats bit-exactly.
        let text = crate::snapshot::encode(&materialized);
        assert_eq!(text, crate::snapshot::encode(&r.to_snapshot()));
        for delta in &deltas {
            let round =
                crate::snapshot::decode_delta(&crate::snapshot::encode_delta(delta)).unwrap();
            assert_eq!(&round, delta);
        }
    }

    #[test]
    fn apply_shard_delta_replays_a_follower_to_the_leader_state() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        let follower = SharedSignatureRepository::from_snapshot(&r.to_snapshot()).unwrap();

        let shard = r.shard_index(7);
        let mut cursor = DeltaCursor::default();
        r.prime_delta_cursor(shard, &mut cursor);
        r.insert(
            1,
            7,
            &sig,
            1,
            ResourceAllocation::extra_large(2),
            SimTime::from_hours(1.0),
        );
        let delta = r.capture_shard_delta(shard, 0, &mut cursor);
        follower.apply_shard_delta(&delta).expect("applies");
        assert_eq!(follower.to_snapshot(), r.to_snapshot());
    }

    #[test]
    fn restore_shard_reseeds_a_wiped_shard_from_a_full_snapshot() {
        let r = repo();
        let sig = [100.0, 5.0, 0.3];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        r.insert(0, 9, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        let golden = r.to_snapshot();

        // "Lose" namespace 7's shard by re-seeding a stale image of it, then
        // recover it from the golden snapshot.
        let shard = r.shard_index(7);
        let empty = SharedSignatureRepository::new(SharedRepoConfig::default());
        r.restore_shard(shard, &empty.to_snapshot()).unwrap();
        assert!(r.lookup(1, 7, &sig, 0, SimTime::ZERO).is_none());

        // The wipe zeroed the shard's counters along with its namespaces;
        // the golden restore brings both back.
        r.restore_shard(shard, &golden).unwrap();
        assert_eq!(r.to_snapshot(), golden);
        assert!(r.lookup(1, 7, &sig, 0, SimTime::ZERO).is_some());

        // A snapshot from a different shard layout is rejected.
        let other = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 4,
            ..Default::default()
        });
        match r.restore_shard(shard, &other.to_snapshot()) {
            Err(crate::snapshot::SnapshotError::BaseMismatch { message }) => {
                assert!(message.contains("shards"), "{message}");
            }
            other => panic!("expected a base-mismatch error, got {other:?}"),
        }
    }

    #[test]
    fn namespaces_are_isolated() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.lookup(0, 2, &sig, 0, SimTime::ZERO).is_none());
    }

    #[test]
    fn interference_buckets_are_separate() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        r.insert(0, 1, &sig, 2, ResourceAllocation::large(6), SimTime::ZERO);
        assert_eq!(r.len(), 2);
        assert_eq!(r.anchor_count(), 1);
        assert_eq!(
            r.lookup(0, 1, &sig, 2, SimTime::ZERO).unwrap().allocation,
            ResourceAllocation::large(6)
        );
    }

    #[test]
    fn ttl_makes_entries_stale_and_the_sweep_evicts_them() {
        let r = SharedSignatureRepository::new(SharedRepoConfig {
            ttl: Some(SimDuration::from_hours(24.0)),
            ..Default::default()
        });
        let sig = [10.0, 10.0];
        r.insert(0, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.lookup(0, 1, &sig, 0, SimTime::from_hours(23.0)).is_some());
        // A stale entry misses, but stays in place until the TTL sweep runs —
        // lookups are read-only.
        assert!(r.lookup(0, 1, &sig, 0, SimTime::from_hours(25.0)).is_none());
        assert_eq!(r.stats().misses, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.evict_stale(SimTime::from_hours(25.0)), 1);
        assert_eq!(r.stats().evictions, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn per_shard_sweep_touches_only_its_shard() {
        let r = SharedSignatureRepository::new(SharedRepoConfig {
            ttl: Some(SimDuration::from_hours(24.0)),
            ..Default::default()
        });
        // Find two namespaces routed to different shards.
        let ns_a = 0u64;
        let ns_b = (1..64u64)
            .find(|&ns| r.shard_index(ns) != r.shard_index(ns_a))
            .expect("distinct shards exist");
        let sig = [10.0, 10.0];
        r.insert(
            0,
            ns_a,
            &sig,
            0,
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        r.insert(
            0,
            ns_b,
            &sig,
            0,
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        let late = SimTime::from_hours(30.0);
        // Sweeping shard A at hour 30 reclaims only A's entry.
        assert_eq!(r.evict_stale_shard(r.shard_index(ns_a), late), 1);
        assert_eq!(r.len(), 1);
        assert!(r.peek(ns_b, &sig, 0, SimTime::ZERO, None).is_some());
        assert_eq!(r.stats().evictions, 1);
        // The whole-repo sweep then reclaims the rest; the per-shard and
        // fleet-wide paths account evictions through the same counters.
        assert_eq!(r.evict_stale(late), 1);
        assert!(r.is_empty());
        assert_eq!(r.stats().evictions, 2);
    }

    #[test]
    fn peek_excludes_owner_and_moves_no_stats() {
        let r = repo();
        let sig = [10.0, 10.0];
        r.insert(3, 1, &sig, 0, ResourceAllocation::large(2), SimTime::ZERO);
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, Some(3)).is_none());
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, Some(4)).is_some());
        assert!(r.peek(1, &sig, 0, SimTime::ZERO, None).is_some());
        let stats = r.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let r = repo();
        for ns in 0..1000u64 {
            let a = r.shard_index(ns);
            let b = r.shard_index(ns);
            assert_eq!(a, b);
            assert!(a < r.shard_count());
        }
    }

    #[test]
    fn apply_publish_and_record_hit() {
        let r = repo();
        let sig = vec![10.0, 10.0];
        r.apply(&PendingOp::Publish {
            tenant: 0,
            namespace: 1,
            signature: sig.clone(),
            interference_bucket: 0,
            allocation: ResourceAllocation::large(3),
            tuned_at: SimTime::ZERO,
        });
        assert_eq!(r.len(), 1);
        r.apply(&PendingOp::RecordHit {
            tenant: 5,
            namespace: 1,
            signature: sig,
            interference_bucket: 0,
            resolved: None,
        });
        let stats = r.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.cross_tenant_hits, 1);
    }

    #[test]
    fn apply_batch_matches_sequential_apply() {
        let mk_ops = || -> Vec<PendingOp> {
            let mut ops = Vec::new();
            for t in 0..6usize {
                let ns = (t % 3) as u64;
                let sig = vec![10.0 * (1 + t % 2) as f64, 5.0, 80.0];
                ops.push(PendingOp::Publish {
                    tenant: t,
                    namespace: ns,
                    signature: sig.clone(),
                    interference_bucket: 0,
                    allocation: ResourceAllocation::large(1 + t as u32),
                    tuned_at: SimTime::from_hours(t as f64),
                });
                ops.push(PendingOp::RecordHit {
                    tenant: t + 10,
                    namespace: ns,
                    signature: sig,
                    interference_bucket: 0,
                    resolved: None,
                });
                ops.push(PendingOp::RecordMiss { namespace: ns });
            }
            ops
        };
        let sequential = repo();
        let seq_applied: Vec<bool> = mk_ops().iter().map(|op| sequential.apply(op)).collect();
        let batched = repo();
        let batch_applied = batched.apply_batch(&mk_ops());
        assert_eq!(seq_applied, batch_applied);
        assert_eq!(sequential.len(), batched.len());
        assert_eq!(sequential.anchor_count(), batched.anchor_count());
        assert_eq!(sequential.stats(), batched.stats());
    }

    #[test]
    fn early_exit_distance_matches_full_distance() {
        let a = [100.0, 5.0, 0.3, 77.0];
        let b = [103.0, 5.2, 0.31, 75.0];
        let full = normalized_distance(&a, &b);
        assert_eq!(normalized_distance_within(&a, &b, 1.0), Some(full));
        assert_eq!(normalized_distance_within(&a, &b, full), Some(full));
        assert_eq!(normalized_distance_within(&a, &b, full * 0.99), None);
        assert_eq!(normalized_distance_within(&a, &[1.0], 10.0), None);
    }

    #[test]
    fn snapshot_round_trip_preserves_state_and_stats() {
        let r = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 4,
            ttl: Some(SimDuration::from_hours(48.0)),
            match_tolerance: 0.1,
        });
        for ns in 0..6u64 {
            for a in 0..5usize {
                let sig = [100.0 * (a + 1) as f64, 5.0 + ns as f64, -0.3];
                r.insert(
                    a,
                    ns,
                    &sig,
                    (a % 2) as u32,
                    ResourceAllocation::large(1 + a as u32),
                    SimTime::from_hours(a as f64),
                );
                r.lookup(9, ns, &sig, (a % 2) as u32, SimTime::from_hours(1.0));
            }
            // A mixed-length (misfit) anchor and a deliberate miss.
            r.insert(
                0,
                ns,
                &[1.0, 2.0],
                0,
                ResourceAllocation::large(1),
                SimTime::ZERO,
            );
            r.lookup(9, ns, &[9e9, 9e9, 9e9], 0, SimTime::ZERO);
        }
        let text = r.save_snapshot();
        assert_eq!(text, r.save_snapshot(), "snapshots are deterministic");
        let loaded = SharedSignatureRepository::load_snapshot(&text).expect("loads");
        assert_eq!(loaded.len(), r.len());
        assert_eq!(loaded.anchor_count(), r.anchor_count());
        assert_eq!(loaded.stats(), r.stats());
        assert_eq!(loaded.shard_stats(), r.shard_stats());
        assert_eq!(loaded.save_snapshot(), text, "round-trip is byte-identical");
        // Subsequent operations behave identically on both repositories.
        for ns in 0..6u64 {
            for a in 0..5usize {
                let sig = [100.0 * (a + 1) as f64, 5.0 + ns as f64, -0.3];
                assert_eq!(loaded.resolve_anchor(ns, &sig), r.resolve_anchor(ns, &sig));
                assert_eq!(
                    loaded.lookup(9, ns, &sig, (a % 2) as u32, SimTime::from_hours(2.0)),
                    r.lookup(9, ns, &sig, (a % 2) as u32, SimTime::from_hours(2.0))
                );
            }
            assert_eq!(
                loaded.resolve_anchor(ns, &[1.0, 2.0]),
                r.resolve_anchor(ns, &[1.0, 2.0])
            );
        }
        assert_eq!(
            loaded.evict_stale(SimTime::from_hours(100.0)),
            r.evict_stale(SimTime::from_hours(100.0))
        );
        assert_eq!(loaded.stats(), r.stats());
    }

    #[test]
    fn lookups_complete_while_a_committer_holds_the_write_lock() {
        use std::sync::mpsc;
        let r = Arc::new(SharedSignatureRepository::new(SharedRepoConfig {
            ttl: Some(SimDuration::from_hours(24.0)),
            ..Default::default()
        }));
        let sig = [100.0, 5.0, 0.3];
        r.insert(0, 7, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
        let shard = r.shard_index(7);
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let stall = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                r.with_shard_exclusive(shard, || {
                    entered_tx.send(()).expect("test channel");
                    release_rx.recv().expect("test channel");
                })
            })
        };
        entered_rx
            .recv()
            .expect("staller entered the critical section");
        // The shard write lock is held ("committer stalled mid-commit"):
        // the whole read surface still completes — these calls would
        // deadlock this test if any of them took the shard lock.
        assert!(r.lookup(1, 7, &sig, 0, SimTime::ZERO).is_some());
        assert!(r.peek(7, &sig, 0, SimTime::ZERO, None).is_some());
        assert_eq!(r.resolve_anchor(7, &sig), Some(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.anchor_count(), 1);
        // The clean-shard TTL sweep skips on the watermark without ever
        // touching the (held) write lock.
        assert_eq!(r.evict_stale(SimTime::from_hours(1.0)), 0);
        release_tx.send(()).expect("test channel");
        stall.join().expect("staller thread");
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn snapcell_readers_stay_coherent_under_publish_churn() {
        let cell = Arc::new(SnapCell::new(Arc::new(0usize)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0usize;
                    while !stop.load(Relaxed) {
                        let v = cell.with(|v| *v);
                        assert!(v >= last, "publishes observed in order: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        // One serialized publisher (the cell's contract), churning slots.
        for i in 1..=20_000usize {
            cell.publish(Arc::new(i));
        }
        stop.store(true, Relaxed);
        for t in readers {
            t.join().expect("reader thread");
        }
        assert_eq!(cell.with(|v| *v), 20_000);
    }

    #[test]
    fn sweep_watermark_tracks_eviction_counts_bit_identically() {
        // Two repositories driven identically; one's sweeps are forced past
        // the watermark fast path by a deliberately early entry. Counts and
        // state must match at every step.
        let config = SharedRepoConfig {
            ttl: Some(SimDuration::from_hours(10.0)),
            ..Default::default()
        };
        let a = SharedSignatureRepository::new(config.clone());
        let b = SharedSignatureRepository::new(config);
        let sig = [10.0, 20.0];
        for (hour, ns) in [(0.0, 1u64), (4.0, 2), (8.0, 3), (12.0, 4)] {
            let t = SimTime::from_hours(hour);
            a.insert(0, ns, &sig, 0, ResourceAllocation::large(2), t);
            b.insert(0, ns, &sig, 0, ResourceAllocation::large(2), t);
            let now = SimTime::from_hours(hour + 1.0);
            assert_eq!(a.evict_stale(now), b.evict_stale(now));
        }
        for hour in [11.0, 15.0, 19.0, 23.0, 40.0] {
            let now = SimTime::from_hours(hour);
            assert_eq!(a.evict_stale(now), b.evict_stale(now), "at {hour}h");
            assert_eq!(a.len(), b.len());
            assert_eq!(a.stats().evictions, b.stats().evictions);
        }
        assert!(a.is_empty());
    }

    #[test]
    fn mixed_length_signatures_resolve_exactly() {
        // A namespace whose anchors have different dimensionalities: the
        // first fixes the grid; the misfit stays matchable for queries of
        // its own length.
        let r = repo();
        r.insert(
            0,
            1,
            &[10.0, 20.0, 30.0],
            0,
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        r.insert(
            0,
            1,
            &[10.0, 20.0],
            0,
            ResourceAllocation::large(5),
            SimTime::ZERO,
        );
        assert_eq!(r.anchor_count(), 2);
        assert_eq!(
            r.lookup(1, 1, &[10.0, 20.0, 30.0], 0, SimTime::ZERO)
                .unwrap()
                .allocation,
            ResourceAllocation::large(2)
        );
        assert_eq!(
            r.lookup(1, 1, &[10.0, 20.0], 0, SimTime::ZERO)
                .unwrap()
                .allocation,
            ResourceAllocation::large(5)
        );
    }
}
