//! Resource allocations and the allocation search space.

use crate::error::CloudError;
use crate::instance::InstanceType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A resource allocation: how many instances of which type serve the workload.
///
/// # Example
///
/// ```
/// use dejavu_cloud::{InstanceType, ResourceAllocation};
/// let a = ResourceAllocation::new(InstanceType::Large, 4)?;
/// assert_eq!(a.capacity_units(), 4.0);
/// assert!((a.hourly_cost() - 4.0 * 0.34).abs() < 1e-12);
/// # Ok::<(), dejavu_cloud::CloudError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceAllocation {
    instance_type: InstanceType,
    count: u32,
}

impl ResourceAllocation {
    /// Creates an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::InvalidAllocation`] if `count` is zero.
    pub fn new(instance_type: InstanceType, count: u32) -> Result<Self, CloudError> {
        if count == 0 {
            return Err(CloudError::InvalidAllocation {
                reason: "instance count must be at least 1".into(),
            });
        }
        Ok(ResourceAllocation {
            instance_type,
            count,
        })
    }

    /// `count` Large instances (panics only if `count` is 0, which is a caller bug).
    pub fn large(count: u32) -> Self {
        ResourceAllocation::new(InstanceType::Large, count).expect("count validated by caller")
    }

    /// `count` ExtraLarge instances.
    pub fn extra_large(count: u32) -> Self {
        ResourceAllocation::new(InstanceType::ExtraLarge, count).expect("count validated by caller")
    }

    /// The instance type.
    pub fn instance_type(self) -> InstanceType {
        self.instance_type
    }

    /// The number of instances.
    pub fn count(self) -> u32 {
        self.count
    }

    /// Total normalized compute capacity.
    pub fn capacity_units(self) -> f64 {
        self.count as f64 * self.instance_type.capacity_units()
    }

    /// Total hourly cost in USD.
    pub fn hourly_cost(self) -> f64 {
        self.count as f64 * self.instance_type.hourly_price()
    }
}

impl fmt::Display for ResourceAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.count, self.instance_type)
    }
}

/// The discrete set of allocations a deployment may choose from, ordered from
/// cheapest to most expensive. The paper's two provisioning schemes map to the
/// two constructors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationSpace {
    candidates: Vec<ResourceAllocation>,
}

impl AllocationSpace {
    /// Horizontal scaling: `min_instances..=max_instances` Large instances.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::InvalidConfig`] if the range is empty or starts at zero.
    pub fn scale_out(min_instances: u32, max_instances: u32) -> Result<Self, CloudError> {
        if min_instances == 0 || min_instances > max_instances {
            return Err(CloudError::InvalidConfig(format!(
                "invalid scale-out range {min_instances}..={max_instances}"
            )));
        }
        Ok(AllocationSpace {
            candidates: (min_instances..=max_instances)
                .map(ResourceAllocation::large)
                .collect(),
        })
    }

    /// Vertical scaling: a fixed number of instances, Large or ExtraLarge.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::InvalidConfig`] if `instances` is zero.
    pub fn scale_up(instances: u32) -> Result<Self, CloudError> {
        if instances == 0 {
            return Err(CloudError::InvalidConfig(
                "scale-up needs at least one instance".into(),
            ));
        }
        Ok(AllocationSpace {
            candidates: vec![
                ResourceAllocation::large(instances),
                ResourceAllocation::extra_large(instances),
            ],
        })
    }

    /// The candidates, cheapest first.
    pub fn candidates(&self) -> &[ResourceAllocation] {
        &self.candidates
    }

    /// Number of candidate allocations.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns true if the space has no candidates (never true when constructed).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The cheapest allocation.
    pub fn minimal(&self) -> ResourceAllocation {
        self.candidates[0]
    }

    /// The most expensive (full-capacity) allocation — what DejaVu deploys for
    /// unforeseen workloads and what the savings baseline always uses.
    pub fn full_capacity(&self) -> ResourceAllocation {
        *self.candidates.last().expect("space is never empty")
    }

    /// The next larger allocation after `current`, saturating at full capacity.
    pub fn step_up(&self, current: ResourceAllocation, steps: usize) -> ResourceAllocation {
        let idx = self.index_of(current).unwrap_or(0);
        self.candidates[(idx + steps).min(self.candidates.len() - 1)]
    }

    /// The next smaller allocation below `current`, saturating at the minimum.
    pub fn step_down(&self, current: ResourceAllocation, steps: usize) -> ResourceAllocation {
        let idx = self.index_of(current).unwrap_or(0);
        self.candidates[idx.saturating_sub(steps)]
    }

    /// Position of `allocation` in the space, if present.
    pub fn index_of(&self, allocation: ResourceAllocation) -> Option<usize> {
        self.candidates.iter().position(|&c| c == allocation)
    }

    /// The cheapest candidate with at least `capacity_units` of capacity, or
    /// full capacity if none suffices.
    pub fn cheapest_with_capacity(&self, capacity_units: f64) -> ResourceAllocation {
        self.candidates
            .iter()
            .copied()
            .find(|c| c.capacity_units() >= capacity_units)
            .unwrap_or_else(|| self.full_capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_basics() {
        let a = ResourceAllocation::large(3);
        assert_eq!(a.count(), 3);
        assert_eq!(a.instance_type(), InstanceType::Large);
        assert_eq!(a.capacity_units(), 3.0);
        assert!((a.hourly_cost() - 1.02).abs() < 1e-12);
        assert_eq!(a.to_string(), "3xL");
        let xl = ResourceAllocation::extra_large(5);
        assert_eq!(xl.capacity_units(), 10.0);
        assert!((xl.hourly_cost() - 3.40).abs() < 1e-12);
    }

    #[test]
    fn zero_count_rejected() {
        assert!(ResourceAllocation::new(InstanceType::Large, 0).is_err());
    }

    #[test]
    fn scale_out_space() {
        let s = AllocationSpace::scale_out(1, 10).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.minimal(), ResourceAllocation::large(1));
        assert_eq!(s.full_capacity(), ResourceAllocation::large(10));
        assert_eq!(s.cheapest_with_capacity(6.5), ResourceAllocation::large(7));
        assert_eq!(
            s.cheapest_with_capacity(99.0),
            ResourceAllocation::large(10)
        );
        assert!(AllocationSpace::scale_out(0, 5).is_err());
        assert!(AllocationSpace::scale_out(5, 2).is_err());
    }

    #[test]
    fn scale_up_space() {
        let s = AllocationSpace::scale_up(5).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.minimal(), ResourceAllocation::large(5));
        assert_eq!(s.full_capacity(), ResourceAllocation::extra_large(5));
        assert!(AllocationSpace::scale_up(0).is_err());
    }

    #[test]
    fn stepping_saturates() {
        let s = AllocationSpace::scale_out(1, 10).unwrap();
        let a = ResourceAllocation::large(9);
        assert_eq!(s.step_up(a, 2), ResourceAllocation::large(10));
        assert_eq!(
            s.step_down(ResourceAllocation::large(2), 5),
            ResourceAllocation::large(1)
        );
        assert_eq!(
            s.step_up(ResourceAllocation::large(3), 2),
            ResourceAllocation::large(5)
        );
        assert_eq!(s.index_of(ResourceAllocation::large(4)), Some(3));
        assert_eq!(s.index_of(ResourceAllocation::extra_large(4)), None);
    }
}
