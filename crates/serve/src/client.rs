//! The remote client: a [`RepositoryClient`] backed by one dejavu-serve
//! connection, so the fleet engine runs against a served repository exactly
//! as it runs against an in-process one (`fleet --repo remote`).
//!
//! Read resolution happens server-side — [`RemoteRepository`] maps
//! [`peek_resolved_cached`](RepositoryClient::peek_resolved_cached) to a
//! wire `Peek` and ignores the caller's memo. That is sound because the
//! memoized path is documented bit-identical to the fresh one: the memo
//! only skips re-deriving an answer, never changes it, so a remote run's
//! [`FleetReport`](dejavu_fleet::FleetReport) bit-matches the in-process
//! run (the wire differential suite pins this).
//!
//! The engine's repository surface is not error-plumbed — an in-process
//! repository cannot fail — so a wire failure mid-run panics with the
//! typed [`WireError`] in the message rather than silently diverging.

use crate::protocol::{read_frame, write_frame, Request, Response, WireError};
use dejavu_fleet::{PendingOp, RepositoryClient, ResolveMemo, ShardStats, SharedEntry, TenantId};
use dejavu_simcore::SimTime;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

/// The transports a [`RemoteRepository`] can speak over.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One tenant session against a dejavu-serve daemon, usable anywhere the
/// engine takes an `Arc<dyn RepositoryClient>`. The connection is
/// serialized behind a mutex — the wire is one request/response stream, so
/// concurrent tenant threads take turns (the served repository's wait-free
/// read path is on the far side).
#[derive(Debug)]
pub struct RemoteRepository {
    conn: Mutex<Conn>,
    /// Cached from `HelloOk`: the shard count is immutable for a
    /// repository's lifetime, and shard routing is on every hot path.
    shard_count: usize,
}

impl RemoteRepository {
    /// Connects over TCP and opens a session for `tenant`.
    pub fn connect_tcp(addr: &str, tenant: TenantId) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Conn::Tcp(stream), tenant)
    }

    /// Connects over a Unix domain socket and opens a session for `tenant`.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path, tenant: TenantId) -> Result<Self, WireError> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Self::handshake(Conn::Unix(stream), tenant)
    }

    fn handshake(mut conn: Conn, tenant: TenantId) -> Result<Self, WireError> {
        write_frame(&mut conn, &Request::Hello { tenant }.encode())?;
        match Self::read_response(&mut conn)? {
            Response::HelloOk { shard_count } => Ok(RemoteRepository {
                conn: Mutex::new(conn),
                shard_count: shard_count as usize,
            }),
            Response::Denied { reason } => Err(WireError::Denied { reason }),
            other => Err(unexpected(&other)),
        }
    }

    fn read_response(conn: &mut Conn) -> Result<Response, WireError> {
        let body = read_frame(conn)?.ok_or(WireError::Truncated {
            context: "response frame",
        })?;
        match Response::decode(&body)? {
            Response::Error { message } => Err(WireError::Remote { message }),
            response => Ok(response),
        }
    }

    /// One request/response round trip.
    fn call(&self, request: &Request) -> Result<Response, WireError> {
        let mut conn = self.conn.lock().expect("remote connection poisoned");
        write_frame(&mut *conn, &request.encode())?;
        Self::read_response(&mut conn)
    }

    /// Like [`call`](Self::call), but a failure is fatal: the engine's
    /// repository surface has no error channel.
    fn must(&self, request: &Request) -> Response {
        match self.call(request) {
            Ok(response) => response,
            Err(err) => panic!("remote repository call failed: {err}"),
        }
    }

    /// Hit-accounting lookup over the wire (the serving benchmark's
    /// round-trip path).
    pub fn lookup(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
    ) -> Result<Option<SharedEntry>, WireError> {
        match self.call(&Request::Lookup {
            tenant,
            namespace,
            signature: signature.to_vec(),
            interference_bucket,
            now,
        })? {
            Response::Entry(entry) => Ok(entry),
            other => Err(unexpected(&other)),
        }
    }

    /// Direct publish over the wire.
    pub fn publish(
        &self,
        tenant: TenantId,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        allocation: dejavu_cloud::ResourceAllocation,
        tuned_at: SimTime,
    ) -> Result<(), WireError> {
        match self.call(&Request::Publish {
            tenant,
            namespace,
            signature: signature.to_vec(),
            interference_bucket,
            allocation,
            tuned_at,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// The served repository's full snapshot text.
    pub fn snapshot(&self) -> Result<String, WireError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> WireError {
    let _ = response;
    WireError::Malformed {
        context: "unexpected response opcode",
    }
}

impl RepositoryClient for RemoteRepository {
    fn peek_resolved_cached(
        &self,
        namespace: u64,
        signature: &[f64],
        interference_bucket: u32,
        now: SimTime,
        exclude_owner: Option<TenantId>,
        memo: &mut ResolveMemo,
    ) -> Option<(SharedEntry, (u32, u32, f64))> {
        // The memo caches anchor resolution, which lives server-side here;
        // uncached answers are bit-identical, so skipping it is invisible.
        let _ = memo;
        match self.must(&Request::Peek {
            namespace,
            signature: signature.to_vec(),
            interference_bucket,
            now,
            exclude_owner,
        }) {
            Response::Peeked(result) => result,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn apply_batch(&self, ops: &[PendingOp]) -> Vec<bool> {
        match self.must(&Request::CommitBatch { ops: ops.to_vec() }) {
            Response::Applied(flags) => flags,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn evict_stale(&self, now: SimTime) -> u64 {
        match self.must(&Request::EvictStale { now }) {
            Response::Evicted(n) => n,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn evict_stale_shard(&self, shard: usize, now: SimTime) -> u64 {
        match self.must(&Request::EvictStaleShard {
            shard: shard as u64,
            now,
        }) {
            Response::Evicted(n) => n,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn shard_count(&self) -> usize {
        self.shard_count
    }

    fn clock(&self) -> SimTime {
        match self.must(&Request::Meta) {
            Response::Meta { clock_secs, .. } => SimTime::from_secs(clock_secs),
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn len(&self) -> usize {
        match self.must(&Request::Meta) {
            Response::Meta { len, .. } => len as usize,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn anchor_count(&self) -> usize {
        match self.must(&Request::Meta) {
            Response::Meta { anchors, .. } => anchors as usize,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn stats(&self) -> ShardStats {
        match self.must(&Request::Stats) {
            Response::Stats(stats) => stats,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        match self.must(&Request::ShardStats) {
            Response::ShardStatsList(list) => list,
            other => panic!("remote repository call failed: {}", unexpected(&other)),
        }
    }
}
