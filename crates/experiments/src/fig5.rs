//! Figure 5 — identifying the representative workloads: the 24 hourly
//! workloads of the HotMail learning day collapse into a small number of
//! workload classes, one of which is the singleton peak hour.

use crate::report::Report;
use dejavu_core::{ClusteringOutcome, WorkloadClusterer};
use dejavu_metrics::WorkloadSignature;
use dejavu_proxy::{Profiler, ProfilerConfig};
use dejavu_simcore::SimRng;
use dejavu_traces::{hotmail_week, RequestMix, ServiceKind, Workload};

/// The Figure-5 result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One signature per learning-day hour.
    pub signatures: Vec<WorkloadSignature>,
    /// The clustering of those 24 workloads.
    pub clustering: ClusteringOutcome,
    /// Number of members per class.
    pub class_sizes: Vec<usize>,
}

impl Fig5Result {
    /// Renders the figure.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Figure 5: 24 hourly workloads collapse into a few classes");
        r.kv("hourly workloads", self.signatures.len());
        r.kv("workload classes", self.clustering.num_classes());
        for (c, size) in self.class_sizes.iter().enumerate() {
            r.kv(&format!("class {c} members"), size);
        }
        r
    }
}

/// Runs the Figure-5 experiment: profiles each hour of the HotMail learning
/// day and clusters the resulting signatures.
pub fn run(seed: u64) -> Fig5Result {
    let trace = hotmail_week(seed).days(0, 1);
    let profiler = Profiler::new(ProfilerConfig::default());
    let mut rng = SimRng::seed_from_u64(seed ^ 0xF15);
    let signatures: Vec<WorkloadSignature> = trace
        .levels()
        .iter()
        .map(|&level| {
            let w =
                Workload::with_intensity(ServiceKind::Cassandra, level, RequestMix::update_heavy());
            profiler.profile(&w, &mut rng).signature
        })
        .collect();
    let clustering = WorkloadClusterer::new((2, 8), seed)
        .cluster(&signatures)
        .expect("24 signatures are plenty");
    let mut class_sizes = vec![0usize; clustering.num_classes()];
    for &a in &clustering.assignments {
        class_sizes[a] += 1;
    }
    Fig5Result {
        signatures,
        clustering,
        class_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_workloads_become_a_few_classes_with_a_singleton_peak() {
        let fig = run(3);
        assert_eq!(fig.signatures.len(), 24);
        let k = fig.clustering.num_classes();
        assert!((3..=5).contains(&k), "classes {k}");
        // The peak hour stands alone (or nearly so).
        let smallest = fig.class_sizes.iter().copied().min().unwrap();
        assert!(smallest <= 2, "smallest class has {smallest} members");
        assert!(fig.report().to_string().contains("classes"));
    }
}
