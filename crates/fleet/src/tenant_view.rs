//! Per-tenant adapter between a `DejaVuController` and the fleet-shared
//! repository.
//!
//! [`TenantRepoView`] implements `dejavu_core::AllocationStore`, so a tenant's
//! controller is oblivious to the sharing. The view keeps:
//!
//! * a **local overlay** — the tenant's own entries, keyed by its local
//!   [`RepositoryKey`]s; reads and writes hit it immediately, exactly like the
//!   classic `SignatureRepository` (which is what makes a single-tenant fleet
//!   bit-match a stand-alone run);
//! * an **outbox** of [`PendingOp`]s — publishes and cross-tenant hit records
//!   buffered during an epoch and drained by the configured
//!   [`crate::transport`] backend (the BSP barrier in tenant order at every
//!   epoch barrier; the bounded-staleness committer per tenant-epoch). The
//!   view only ever *buffers*; when and under what consistency the
//!   operations commit is entirely the transport's business.
//!
//! A lookup that misses the overlay falls back to the shared store, excluding
//! entries this tenant owns (its own knowledge lives in the overlay; after a
//! re-clustering `clear`, stale self-entries must not resurrect through the
//! shared path).
//!
//! # Clocks
//!
//! A tenant's controller runs on its **local** clock (zero at its join
//! barrier), but the shared store's timestamps are **global** fleet times —
//! otherwise a late joiner's entries would look ancient to the barrier TTL
//! sweep and one tenant's staleness would be judged against another tenant's
//! clock. The view is the boundary: it adds the tenant's
//! [`clock offset`](TenantRepoView::new_with_offset) when publishing or
//! consulting the shared store and keeps the local overlay in local time.

use crate::repo_client::RepositoryClient;
use crate::shared_repo::{PendingOp, ResolveMemo, TenantId};
use crate::transport::Outbox;
use dejavu_cloud::ResourceAllocation;
use dejavu_core::repository::{
    AllocationStore, RepositoryEntry, RepositoryKey, RepositoryStats, StoreContext,
};
use dejavu_core::FlatMap;
use dejavu_simcore::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// A tenant's view of the fleet-shared signature repository.
#[derive(Debug)]
pub struct TenantRepoView {
    shared: Arc<dyn RepositoryClient>,
    tenant: TenantId,
    namespace: u64,
    /// Global fleet time of this tenant's join barrier: added to local times
    /// when talking to the shared store, so shared timestamps are coherent
    /// fleet-wide no matter when a tenant joined.
    clock_offset: SimDuration,
    local: FlatMap<RepositoryKey, RepositoryEntry>,
    stats: RepositoryStats,
    /// Anchor resolutions for the class-medoid signatures this tenant looks
    /// up tick after tick — provably bit-identical to resolving from scratch
    /// (anchors only accrete; see [`ResolveMemo`]).
    memo: ResolveMemo,
    outbox: Outbox,
}

impl TenantRepoView {
    /// Creates a view for `tenant` within `namespace`, returning the view and
    /// the outbox handle the fleet engine drains at epoch barriers. The
    /// tenant's clock is taken to coincide with the fleet's (offset zero).
    pub fn new(
        shared: Arc<dyn RepositoryClient>,
        tenant: TenantId,
        namespace: u64,
    ) -> (Self, Outbox) {
        Self::new_with_offset(shared, tenant, namespace, SimDuration::from_secs(0.0))
    }

    /// [`new`](Self::new) for a tenant whose local clock starts
    /// `clock_offset` into the fleet run (an elastic late joiner).
    pub fn new_with_offset(
        shared: Arc<dyn RepositoryClient>,
        tenant: TenantId,
        namespace: u64,
        clock_offset: SimDuration,
    ) -> (Self, Outbox) {
        let outbox: Outbox = Arc::new(Mutex::new(Vec::new()));
        (
            TenantRepoView {
                shared,
                tenant,
                namespace,
                clock_offset,
                local: FlatMap::new(),
                stats: RepositoryStats::default(),
                memo: ResolveMemo::default(),
                outbox: Arc::clone(&outbox),
            },
            outbox,
        )
    }

    /// The tenant this view belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The namespace this view reads and publishes under.
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// This tenant's local time as global fleet time.
    fn to_global(&self, local: SimTime) -> SimTime {
        local + self.clock_offset
    }

    /// Global fleet time as this tenant's local time, clamped to the tenant's
    /// time zero for instants before it joined.
    fn to_local(&self, global: SimTime) -> SimTime {
        SimTime::ZERO + global.saturating_since(SimTime::ZERO + self.clock_offset)
    }

    fn push_op(&self, op: PendingOp) {
        self.outbox.lock().expect("tenant outbox poisoned").push(op);
    }

    /// Re-points this view at a different shared repository, keeping the
    /// local overlay, stats, memo and outbox.
    ///
    /// Crash recovery replays a tenant against a private repository clone
    /// materialized from the checkpoint chain, then retargets the caught-up
    /// view at the live fleet store. The memo survives the switch because
    /// recovery guarantees the two repositories hold bit-identical anchor
    /// state for this namespace at the switch point (anchors only accrete, so
    /// memoized resolutions stay exact).
    pub fn retarget(&mut self, shared: Arc<dyn RepositoryClient>) {
        self.shared = shared;
    }
}

impl AllocationStore for TenantRepoView {
    fn put(&mut self, ctx: StoreContext<'_>, allocation: ResourceAllocation, tuned_at: SimTime) {
        self.stats.insertions += 1;
        // The unclassified sentinel identifies signature-only publications
        // (learning-phase tunings): they go to the fleet, never into the
        // overlay, where one key would alias every learning workload.
        if ctx.key != RepositoryKey::unclassified() {
            self.local.insert(
                ctx.key,
                RepositoryEntry {
                    allocation,
                    tuned_at,
                    hits: 0,
                },
            );
        }
        if let Some(sig) = ctx.class_signature {
            self.push_op(PendingOp::Publish {
                tenant: self.tenant,
                namespace: self.namespace,
                signature: sig.values().to_vec(),
                interference_bucket: ctx.key.interference_bucket,
                allocation,
                tuned_at: self.to_global(tuned_at),
            });
        }
    }

    fn get(&mut self, ctx: StoreContext<'_>) -> Option<RepositoryEntry> {
        if let Some(entry) = self.local.get_mut(&ctx.key) {
            entry.hits += 1;
            self.stats.hits += 1;
            return Some(*entry);
        }
        let Some(sig) = ctx.class_signature else {
            self.stats.misses += 1;
            return None;
        };
        match self.shared.peek_resolved_cached(
            self.namespace,
            sig.values(),
            ctx.key.interference_bucket,
            self.to_global(ctx.now),
            Some(self.tenant),
            &mut self.memo,
        ) {
            Some((shared_entry, resolved)) => {
                self.stats.hits += 1;
                self.push_op(PendingOp::RecordHit {
                    tenant: self.tenant,
                    namespace: self.namespace,
                    signature: sig.values().to_vec(),
                    interference_bucket: ctx.key.interference_bucket,
                    resolved: Some(resolved),
                });
                let entry = RepositoryEntry {
                    allocation: shared_entry.allocation,
                    // The overlay lives on the tenant's local clock; clamp
                    // entries tuned before this tenant joined to its time zero.
                    tuned_at: self.to_local(shared_entry.tuned_at),
                    hits: 1,
                };
                // Adopt the fleet's answer locally for classified workloads so
                // later lookups are overlay hits; learning-phase lookups use
                // the unclassified sentinel and must not alias through it.
                if ctx.key != RepositoryKey::unclassified() {
                    self.local.insert(ctx.key, entry);
                }
                Some(entry)
            }
            None => {
                self.stats.misses += 1;
                self.push_op(PendingOp::RecordMiss {
                    namespace: self.namespace,
                });
                None
            }
        }
    }

    fn clear(&mut self) {
        // Re-clustering invalidates this tenant's classes only; other tenants'
        // shared entries stay (staleness is the TTL's job).
        self.local.clear();
    }

    fn len(&self) -> usize {
        self.local.len()
    }

    fn stats(&self) -> RepositoryStats {
        self.stats
    }

    fn entries(&self) -> Vec<(RepositoryKey, RepositoryEntry)> {
        self.local.iter().map(|(k, e)| (*k, *e)).collect()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_repo::{SharedRepoConfig, SharedSignatureRepository};
    use dejavu_metrics::WorkloadSignature;
    use dejavu_simcore::SimDuration;

    fn sig(values: &[f64]) -> WorkloadSignature {
        WorkloadSignature::from_normalized(
            (0..values.len()).map(|i| format!("m{i}")).collect(),
            values.to_vec(),
            SimDuration::from_secs(10.0),
        )
    }

    fn shared() -> Arc<SharedSignatureRepository> {
        Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default()))
    }

    #[test]
    fn own_writes_hit_the_overlay_immediately() {
        let (mut view, outbox) = TenantRepoView::new(shared(), 0, 1);
        let s = sig(&[10.0, 20.0]);
        let key = RepositoryKey::baseline(0);
        view.put(
            StoreContext::with_signature(key, &s),
            ResourceAllocation::large(4),
            SimTime::ZERO,
        );
        let entry = view.get(StoreContext::with_signature(key, &s)).unwrap();
        assert_eq!(entry.allocation, ResourceAllocation::large(4));
        assert_eq!(view.stats().hits, 1);
        assert_eq!(view.len(), 1);
        // The publish is buffered, not applied.
        assert_eq!(outbox.lock().unwrap().len(), 1);
        assert!(view.shared.is_empty());
    }

    #[test]
    fn cross_tenant_reads_see_only_committed_entries_of_others() {
        let repo = shared();
        let s = sig(&[10.0, 20.0]);
        // Tenant 7 committed an entry earlier (simulating an epoch barrier).
        repo.insert(
            7,
            1,
            s.values(),
            0,
            ResourceAllocation::large(6),
            SimTime::ZERO,
        );

        let (mut view, outbox) = TenantRepoView::new(Arc::clone(&repo) as _, 0, 1);
        let entry = view
            .get(StoreContext::with_signature(
                RepositoryKey::unclassified(),
                &s,
            ))
            .expect("fleet hit");
        assert_eq!(entry.allocation, ResourceAllocation::large(6));
        assert_eq!(view.stats().hits, 1);
        // Sentinel lookups are not adopted into the overlay.
        assert_eq!(view.len(), 0);
        // The hit record is buffered for the barrier.
        assert!(matches!(
            outbox.lock().unwrap()[0],
            PendingOp::RecordHit { tenant: 0, .. }
        ));

        // The owner itself never resolves through the shared path.
        let (mut owner_view, _) = TenantRepoView::new(repo, 7, 1);
        assert!(owner_view
            .get(StoreContext::with_signature(
                RepositoryKey::unclassified(),
                &s
            ))
            .is_none());
        assert_eq!(owner_view.stats().misses, 1);
    }

    #[test]
    fn classified_fleet_hits_are_adopted_locally() {
        let repo = shared();
        let s = sig(&[10.0, 20.0]);
        repo.insert(
            3,
            1,
            s.values(),
            0,
            ResourceAllocation::large(5),
            SimTime::ZERO,
        );
        let (mut view, _outbox) = TenantRepoView::new(repo, 0, 1);
        let key = RepositoryKey::baseline(2);
        assert!(view.get(StoreContext::with_signature(key, &s)).is_some());
        assert_eq!(view.len(), 1);
        // Second lookup is an overlay hit — no key-signature resolution needed.
        assert!(view.get(StoreContext::keyed(key)).is_some());
        assert_eq!(view.stats().hits, 2);
    }

    #[test]
    fn clear_drops_only_the_overlay() {
        let repo = shared();
        let s = sig(&[10.0, 20.0]);
        repo.insert(
            3,
            1,
            s.values(),
            0,
            ResourceAllocation::large(5),
            SimTime::ZERO,
        );
        let (mut view, _outbox) = TenantRepoView::new(Arc::clone(&repo) as _, 0, 1);
        view.put(
            StoreContext::with_signature(RepositoryKey::baseline(0), &s),
            ResourceAllocation::large(2),
            SimTime::ZERO,
        );
        view.clear();
        assert!(view.is_empty());
        assert_eq!(repo.len(), 1, "other tenants' entries survive");
    }
}
