//! The one-flag fallback pin: `DEJAVU_EXACT_KERNELS=1` switches every
//! distance kernel to the exact-order serial formulation, and under it the
//! golden fleet of `tests/properties.rs` must reproduce the **same** pinned
//! values. Two things are being proven at once:
//!
//! * the escape hatch works — the flag really selects the historical
//!   floating-point summation order, so a platform where the chunked
//!   kernels' reassociated sums ever flipped a match decision can fall back
//!   to bit-exact behaviour with one environment variable;
//! * the chunked kernels (the default, pinned by the same constants in
//!   `tests/properties.rs`) and the exact kernels agree on this fleet not
//!   just within tolerance but in every decision the simulation made.
//!
//! This lives in its own integration-test binary because the kernel mode is
//! latched from the environment **once per process** (an internal
//! `OnceLock`): the flag must be set before the first distance is computed,
//! which only a fresh process guarantees.

use dejavu::fleet::{FleetConfig, FleetEngine, ScenarioBuilder};
use dejavu::simcore::SimDuration;

#[test]
fn golden_fleet_reproduces_pinned_values_under_exact_kernels() {
    // Latch exact-order kernels before anything touches the dispatcher.
    // This binary runs exactly one test, so no parallel test can observe a
    // half-set environment.
    std::env::set_var("DEJAVU_EXACT_KERNELS", "1");
    assert!(
        dejavu::ml::kernels::exact_kernels(),
        "the exact-kernel flag did not latch"
    );

    let report = FleetEngine::new(
        ScenarioBuilder::new("golden", 13, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .sine_sweep(2)
            .stagger_arrivals(
                4,
                SimDuration::from_hours(6.0),
                SimDuration::from_hours(4.0),
            )
            .depart_at(1, SimDuration::from_hours(20.0))
            .build(),
        FleetConfig::default(),
    )
    .run();
    assert_eq!(report.epochs, 58);

    // The same pins as `bsp_fleet_output_is_byte_identical_to_the_pre_-
    // transport_engine` in `tests/properties.rs` (which runs chunked):
    // integer bookkeeping everywhere, f64 bit patterns only on the platform
    // that recorded them.
    struct GoldenTenant {
        cost_bits: u64,
        slo_bits: u64,
        tunings: usize,
        reuses: u64,
        hits: u64,
        misses: u64,
        cross: u64,
        first_reuse: Option<usize>,
        joined: usize,
        active: usize,
    }
    #[rustfmt::skip]
    let golden = [
        GoldenTenant { cost_bits: 0x4054bd32beb109c9, slo_bits: 0x3fa8e38e38e38e39, tunings: 16, reuses: 8, hits: 31, misses: 16, cross: 8, first_reuse: Some(3), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x405fb7d5acb6f467, slo_bits: 0x3fbc71c71c71c71c, tunings: 13, reuses: 7, hits: 7, misses: 13, cross: 7, first_reuse: Some(6), joined: 0, active: 20 },
        GoldenTenant { cost_bits: 0x4054a54adda39cca, slo_bits: 0x3fa71c71c71c71c7, tunings: 20, reuses: 4, hits: 27, misses: 20, cross: 4, first_reuse: Some(3), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x40587597530eca87, slo_bits: 0x3fb471c71c71c71c, tunings: 14, reuses: 10, hits: 34, misses: 14, cross: 10, first_reuse: Some(8), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x405a8119b6ba23f6, slo_bits: 0x3fa0000000000000, tunings: 23, reuses: 1, hits: 7, misses: 23, cross: 1, first_reuse: Some(14), joined: 6, active: 48 },
        GoldenTenant { cost_bits: 0x405cbf0cf87d9c56, slo_bits: 0x3fb0e38e38e38e39, tunings: 28, reuses: 2, hits: 16, misses: 22, cross: 2, first_reuse: Some(10), joined: 10, active: 48 },
    ];
    let pin_bits = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    for (t, g) in report.tenants.iter().zip(&golden) {
        if pin_bits {
            assert_eq!(
                t.dejavu.total_cost.to_bits(),
                g.cost_bits,
                "{} cost",
                t.name
            );
            assert_eq!(
                t.dejavu.slo_violation_fraction.to_bits(),
                g.slo_bits,
                "{} slo",
                t.name
            );
        }
        assert_eq!(t.stats.tunings, g.tunings, "{} tunings", t.name);
        assert_eq!(t.stats.fleet_reuses, g.reuses, "{} reuses", t.name);
        assert_eq!(t.stats.repository.hits, g.hits, "{} hits", t.name);
        assert_eq!(t.stats.repository.misses, g.misses, "{} misses", t.name);
        assert_eq!(t.cross_tenant_hits, g.cross, "{} cross", t.name);
        assert_eq!(t.first_fleet_reuse_epoch, g.first_reuse, "{} first", t.name);
        assert_eq!(t.joined_epoch, g.joined, "{} joined", t.name);
        assert_eq!(t.active_epochs, g.active, "{} active", t.name);
    }
    if pin_bits {
        let curve_xor = report
            .hit_rate_curve
            .iter()
            .fold(0u64, |acc, v| acc ^ v.to_bits().rotate_left(17));
        assert_eq!(curve_xor, 0x6e803bd257300001, "hit-rate curve drifted");
    }
    let repo = report.shared_repo.as_ref().expect("shared snapshot");
    assert_eq!((repo.entries, repo.anchors), (55, 55));
    assert_eq!(repo.stats.hits, 32);
    assert_eq!(repo.stats.misses, 108);
    assert_eq!(repo.stats.insertions, 132);
    assert_eq!(repo.stats.cross_tenant_hits, 32);
}
