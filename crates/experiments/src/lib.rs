//! Experiment harnesses reproducing every table and figure of the DejaVu
//! (ASPLOS 2012) evaluation.
//!
//! Each `figN`/`table1`/`overhead`/`savings` module builds the workload,
//! platform, service and controllers for the corresponding paper artefact,
//! runs them through the shared [`engine`], and returns a structured result
//! that both the `dejavu-experiments` binary and the Criterion benches render.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — state-of-the-art retuning under a sine-wave RUBiS load |
//! | [`fig4`] | Fig. 4 — signature metrics separate workload volumes/types |
//! | [`fig5`] | Fig. 5 — clustering 24 hourly workloads into a few classes |
//! | [`table1`] | Table 1 — HPC metrics selected for the RUBiS signature |
//! | [`fig6`] | Fig. 6 — scaling out Cassandra, Messenger trace |
//! | [`fig7`] | Fig. 7 — scaling out Cassandra, HotMail trace |
//! | [`fig8`] | Fig. 8 — adaptation time vs. RightScale |
//! | [`fig9`] | Fig. 9 — scaling up SPECweb, HotMail trace |
//! | [`fig10`] | Fig. 10 — scaling up SPECweb, Messenger trace |
//! | [`fig11`] | Fig. 11 — interference detection and compensation |
//! | [`overhead`] | §4.4 — proxy and network overhead |
//! | [`savings`] | §4.5 — provisioning-cost savings and $/year projection |
//! | [`ablation`] | DESIGN.md ablations (class count, classifier, signature size) |

pub mod ablation;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod overhead;
pub mod report;
pub mod savings;
pub mod table1;

/// The single-tenant simulation engine now lives in `dejavu-fleet` (the fleet
/// drives many of them in lock-step); re-exported here so `figN` modules and
/// downstream users keep their `dejavu_experiments::engine::…` paths.
pub use dejavu_fleet::engine;

pub use engine::{RunConfig, RunResult, SimulationEngine};
pub use report::Report;
