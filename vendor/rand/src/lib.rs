//! Offline API-shape stand-in for the `rand` crate's trait surface.
//!
//! `dejavu-simcore` implements its own xoshiro-based generator and only needs
//! the `rand` traits (`RngCore`, `SeedableRng`, `Rng`) so that callers can use
//! the familiar interface. This crate provides those traits with the subset of
//! the API the workspace uses; the actual randomness always comes from
//! `SimRng`'s own deterministic stream.

use std::fmt;

/// Error type mirroring `rand::Error`. The workspace's generators are
/// infallible, so this is never constructed outside of trait signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generation interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange` for the types the workspace
/// draws (`Range<f64>`).
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..100 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }
}
