//! The fleet engine: runs every tenant of a [`Scenario`] concurrently over
//! the shared simulated clock, with all DejaVu controllers reading and
//! writing one [`SharedSignatureRepository`].
//!
//! # Transports
//!
//! How tenant-buffered operations reach the shared store — and what
//! consistency tenants observe — is the job of the pluggable
//! [`crate::transport`] layer. The engine prepares tenants (admission
//! windows, clock offsets, outboxes), hands them to a
//! [`CommitTransport`], and turns the driven runs into a [`FleetReport`]:
//!
//! * [`TransportConfig::Bsp`] (default) — the lock-step epoch barrier.
//!   Tenants advance in epochs; at each barrier the transport drains the
//!   outboxes **in tenant order** and applies them, then runs TTL eviction.
//!   Mid-epoch the shared store never changes, so the fleet result is a pure
//!   function of the scenario — independent of thread count or OS scheduling.
//! * [`TransportConfig::BoundedStaleness`] — free-running tenant threads
//!   whose views trail their shard's commit frontier by at most `K` epochs.
//!   `K = 0` bit-matches the barrier; `K > 0` trades bitwise result
//!   reproducibility for pipeline parallelism.
//! * [`TransportConfig::WorkStealing`] — the same consistency model on a
//!   fixed pool of worker threads pulling per-epoch tenant tasks from a
//!   shared deque: 1000+-tenant fleets without 1000 threads. Results are
//!   invariant to the thread cap; `K = 0` bit-matches the barrier (fuzzed
//!   across scenarios in `tests/differential.rs`).
//!
//! # Elastic tenancy
//!
//! Tenants may join and leave mid-run ([`crate::TenantSpec::start`] /
//! [`crate::TenantSpec::stop`]). Admission and retirement happen **at epoch
//! boundaries only** — a joining tenant takes its first observation tick in
//! the epoch after the barrier at (or right after) its start time, and a
//! leaving tenant retires at the barrier ending the epoch that reaches its
//! stop time — so churn never perturbs the deterministic commit order. A
//! tenant's trace and local clock begin at its join barrier; because
//! admission is barrier-aligned, a tenant joining an otherwise quiescent
//! fleet behaves bit-identically to a tenant running alone against a
//! repository warm-started from a snapshot of that fleet (property-tested in
//! `tests/properties.rs`).
//!
//! # Warm starts
//!
//! [`FleetEngine::run_on`] runs the fleet against a caller-provided (e.g.
//! snapshot-loaded) repository, and the caller can persist the final state
//! with [`SharedSignatureRepository::save_snapshot`];
//! [`FleetEngine::run_warm`] wires both ends. A warm run **resumes the global
//! fleet clock at the snapshot's clock** (the seeding run's high-water mark),
//! so entry ages — and TTL expiry — carry over restarts rather than letting
//! arbitrarily old entries masquerade as fresh. [`FleetReport`] records
//! per-tenant epochs-to-first-fleet-reuse and the fleet-wide hit-rate curve,
//! which is how warm-start convergence is measured against cold starts.

use crate::faults::{FaultInjector, FaultSpec};
use crate::repo_client::RepositoryClient;
use crate::report::{FleetReport, SharedRepoSnapshot, TenantOutcome};
use crate::scenario::Scenario;
use crate::shared_repo::{SharedRepoConfig, SharedSignatureRepository};
use crate::snapshot::SnapshotError;
use crate::tenant_view::TenantRepoView;
use crate::transport::{CommitTransport, FleetHarness, RespawnFn, TenantRun, TransportConfig};
use dejavu_baselines::{FixedMax, RightScale, RightScaleConfig};
use dejavu_core::{DejaVuConfig, DejaVuController};
use dejavu_obs::{Event, Recorder};
use std::sync::Arc;

/// Whether tenants share one repository or each keep their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// All tenants read/write the fleet-shared repository.
    Shared,
    /// Every tenant keeps a private `SignatureRepository` (the ablation the
    /// fleet experiment compares against).
    Isolated,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Repository sharing mode.
    pub sharing: SharingMode,
    /// Worker threads for the barrier transport and tenant finalization;
    /// 0 means "one per available core". The bounded-staleness transport
    /// runs one thread per tenant regardless, and the work-stealing
    /// transport sizes its pool from its own `threads` field.
    pub workers: usize,
    /// Shared-repository sharding/TTL configuration.
    pub repo: SharedRepoConfig,
    /// Learning-phase length handed to every tenant's DejaVu controller.
    pub learning_hours: u64,
    /// Also run the `FixedMax` and `RightScale` baselines for every tenant
    /// (for the fleet-wide cost comparison). Roughly triples the work.
    pub run_baselines: bool,
    /// The commit transport coordinating tenants and the shared store.
    pub transport: TransportConfig,
    /// The fleet flight recorder. Disabled by default — every probe folds to
    /// a null check, and an enabled recorder never feeds back into the
    /// simulation, so results are bit-identical either way. [`FleetEngine::run`]
    /// and [`FleetEngine::run_warm`] attach it to the repository they build;
    /// callers of [`FleetEngine::run_on`] attach a clone to their own
    /// repository via
    /// [`SharedSignatureRepository::with_recorder`] if they want store-level
    /// probes too (clones share storage).
    pub recorder: Recorder,
    /// Deterministic fault plan injected into the asynchronous transports
    /// (`None` — the default — injects nothing and costs nothing). Requires
    /// a shared-mode fleet on an async transport; see
    /// [`TransportConfig::check_faults`].
    pub faults: Option<FaultSpec>,
    /// Delta-checkpoint chain compaction cadence for fault-injected (or
    /// checkpoint-profiled) runs: fold the chain every N checkpoints per
    /// shard. 0 (the default) retains the full chain.
    pub checkpoint_every: usize,
    /// Spill the delta chain to a durable on-disk checkpoint store at this
    /// directory (see `dejavu_fleet::durable`): every committer checkpoint
    /// is crash-safe on disk before the commit acknowledges, and the
    /// directory replays to the final repository state. `None` (the
    /// default) keeps checkpoints in memory. Requires a shared-mode fleet
    /// on an async transport with an in-process repository.
    pub checkpoint_dir: Option<String>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sharing: SharingMode::Shared,
            workers: 0,
            repo: SharedRepoConfig::default(),
            learning_hours: 24,
            run_baselines: false,
            transport: TransportConfig::Bsp,
            recorder: Recorder::disabled(),
            faults: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
        }
    }
}

/// Test seam: a hook that sabotages prepared tenant runs before the
/// transport drives them (e.g. poisoning an outbox to force a mid-epoch
/// panic). Production runs never install one.
type TamperFn = dyn Fn(&mut [TenantRun]);

/// Runs a whole fleet deterministically.
#[derive(Debug)]
pub struct FleetEngine {
    scenario: Scenario,
    config: FleetConfig,
}

impl FleetEngine {
    /// Creates an engine for `scenario` under `config`.
    pub fn new(scenario: Scenario, config: FleetConfig) -> Self {
        FleetEngine { scenario, config }
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn worker_count(&self, tenants: usize) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        configured.clamp(1, tenants.max(1))
    }

    /// Runs the fleet to completion against a fresh, cold repository.
    pub fn run(&self) -> FleetReport {
        self.run_on(Arc::new(
            SharedSignatureRepository::new(self.config.repo.clone())
                .with_recorder(self.config.recorder.clone()),
        ))
    }

    /// Loads `snapshot` (see [`crate::snapshot`]) and runs the fleet against
    /// the warm repository it describes. The snapshot's own configuration
    /// (sharding, TTL, tolerance) governs the repository, not
    /// [`FleetConfig::repo`]. Returns the report and the repository so the
    /// caller can persist the post-run state.
    pub fn run_warm(
        &self,
        snapshot: &str,
    ) -> Result<(FleetReport, Arc<SharedSignatureRepository>), SnapshotError> {
        let shared = Arc::new(
            SharedSignatureRepository::load_snapshot(snapshot)?
                .with_recorder(self.config.recorder.clone()),
        );
        self.config.recorder.event(|| Event::SnapshotLoad {
            bytes: snapshot.len() as u64,
        });
        let report = self.run_on(Arc::clone(&shared));
        Ok((report, shared))
    }

    /// Runs the fleet against a caller-provided repository (cold or
    /// snapshot-loaded) over the configured transport. Keep a clone of the
    /// `Arc` to call [`SharedSignatureRepository::save_snapshot`] afterwards.
    pub fn run_on(&self, shared: Arc<SharedSignatureRepository>) -> FleetReport {
        self.run_on_with(shared, self.config.transport.backend().as_ref())
    }

    /// Runs the fleet through any [`RepositoryClient`] — the entry point
    /// `dejavu-serve`'s wire client uses to drive a fleet against a
    /// repository living in another process. Works over every transport;
    /// fault injection and checkpointing need the in-process repository's
    /// snapshot/restore surface, so they stay inert here (crash recovery is
    /// the serving process's business, not its clients').
    pub fn run_on_client(&self, client: Arc<dyn RepositoryClient>) -> FleetReport {
        self.run_on_inner(client, None, self.config.transport.backend().as_ref(), None)
    }

    /// [`run_on`](Self::run_on) over an explicit transport — the extension
    /// point for consistency models beyond the built-in pair: implement
    /// [`CommitTransport`] and hand it in here.
    pub fn run_on_with(
        &self,
        shared: Arc<SharedSignatureRepository>,
        transport: &dyn CommitTransport,
    ) -> FleetReport {
        self.run_on_inner(Arc::clone(&shared) as _, Some(&shared), transport, None)
    }

    /// Test seam: runs the fleet but lets the caller tamper with the
    /// prepared tenant runs first (e.g. poison an outbox so a tenant panics
    /// mid-step — the fault the transports must survive by retiring the
    /// tenant instead of aborting the fleet).
    #[cfg(test)]
    pub(crate) fn run_tampered(
        &self,
        shared: Arc<SharedSignatureRepository>,
        transport: &dyn CommitTransport,
        tamper: &TamperFn,
    ) -> FleetReport {
        self.run_on_inner(
            Arc::clone(&shared) as _,
            Some(&shared),
            transport,
            Some(tamper),
        )
    }

    fn run_on_inner(
        &self,
        shared: Arc<dyn RepositoryClient>,
        concrete: Option<&Arc<SharedSignatureRepository>>,
        transport: &dyn CommitTransport,
        tamper: Option<&TamperFn>,
    ) -> FleetReport {
        let warm_start = !shared.is_empty();
        let epoch_secs = self.scenario.epoch.as_secs();
        // A warm-started fleet resumes the global clock where the snapshot
        // left it (the repository's high-water mark): entry ages, and with
        // them TTL expiry, carry over restarts instead of resetting to zero.
        // Cold repositories have a zero clock, so nothing changes for them.
        let origin_secs = shared.clock().as_secs();
        let windows = self.scenario.epoch_windows();
        let epochs = windows.iter().map(|w| w.end).max().unwrap_or(0);
        let shared_view = (self.config.sharing == SharingMode::Shared).then_some(&shared);
        let mut runs: Vec<TenantRun> = (0..self.scenario.tenants.len())
            .map(|index| self.build_run(index, shared_view, origin_secs))
            .collect();
        if let Some(tamper) = tamper {
            tamper(&mut runs);
        }

        // The crash-recovery respawn hook: rebuilds tenant `index` from
        // scratch, reading through `repo` (the recovery replay clone).
        // Deterministic — the same spec, seed and clock offset as the
        // original build above — so replaying the same epochs reproduces the
        // pre-crash state bit for bit.
        let respawn_closure = |index: usize, repo: Arc<SharedSignatureRepository>| -> TenantRun {
            let replay: Arc<dyn RepositoryClient> = repo;
            self.build_run(index, Some(&replay), origin_secs)
        };
        let respawn: Option<&RespawnFn<'_>> = match self.config.sharing {
            SharingMode::Shared => Some(&respawn_closure),
            SharingMode::Isolated => None,
        };

        let workers = self.worker_count(runs.len());
        let outcome = {
            let mut harness = FleetHarness {
                runs: &mut runs,
                shared: &shared,
                concrete,
                epochs,
                epoch_secs,
                origin_secs,
                workers,
                recorder: &self.config.recorder,
                faults: FaultInjector::from_spec(self.config.faults),
                checkpoint_every: self.config.checkpoint_every,
                checkpoint_dir: self.config.checkpoint_dir.as_deref(),
                respawn,
            };
            transport.drive(&mut harness)
        };
        let finalize_started = self.config.recorder.start();
        let tenants = self.finish(runs, &outcome.cross_tenant_hits, &outcome.failed);
        if let Some(started) = finalize_started {
            let elapsed = started.elapsed().as_nanos() as u64;
            self.config.recorder.with(|m| m.finalize_ns.set(elapsed));
        }

        let shared_repo =
            (self.config.sharing == SharingMode::Shared).then(|| SharedRepoSnapshot {
                entries: shared.len(),
                anchors: shared.anchor_count(),
                stats: shared.stats(),
                shard_stats: shared.shard_stats(),
            });

        FleetReport {
            scenario: self.scenario.name.clone(),
            sharing: self.config.sharing,
            epochs,
            warm_start,
            tenants,
            shared_repo,
            hit_rate_curve: outcome.hit_rate_curve,
            transport: outcome.summary,
            faults: outcome.faults,
        }
    }

    /// Builds one tenant's complete in-flight run — engine, DejaVu
    /// controller, baselines, tenancy window, repository view. Used both by
    /// the initial prepare pass and by crash recovery (which rebuilds a
    /// tenant against a private replay repository); everything here is a
    /// pure function of the scenario and `origin_secs`, so a rebuilt tenant
    /// replayed over the same epochs is bit-identical to the original.
    pub(crate) fn build_run(
        &self,
        index: usize,
        shared: Option<&Arc<dyn RepositoryClient>>,
        origin_secs: f64,
    ) -> TenantRun {
        let epoch_secs = self.scenario.epoch.as_secs();
        let window = self.scenario.epoch_windows()[index];
        let spec = &self.scenario.tenants[index];
        let engine = crate::engine::SimulationEngine::new(spec.run_config(self.scenario.tick));
        let namespace = spec.namespace();
        let space = engine.config().space.clone();
        let dv_config = DejaVuConfig::builder()
            .learning_hours(self.config.learning_hours)
            .seed(spec.seed)
            .build();
        let mut controller = DejaVuController::new(dv_config, spec.service.build(), space.clone())
            .with_name(format!("dejavu-{}", spec.name));
        let outbox = match shared {
            Some(shared) => {
                // The view maps this tenant's local clock onto the global
                // fleet clock (its join barrier), so shared-store
                // timestamps — and with them TTL staleness — stay
                // coherent across tenants that joined at different times.
                let (view, outbox) = TenantRepoView::new_with_offset(
                    Arc::clone(shared),
                    spec.id,
                    namespace,
                    dejavu_simcore::SimDuration::from_secs(
                        origin_secs + epoch_secs * window.start as f64,
                    ),
                );
                controller = controller.with_store(Box::new(view));
                Some(outbox)
            }
            None => None,
        };
        let state = engine.begin();
        let fixed = self
            .config
            .run_baselines
            .then(|| (FixedMax::new(&space), engine.begin()));
        let rightscale = self.config.run_baselines.then(|| {
            (
                RightScale::new(space.clone(), RightScaleConfig::default()),
                engine.begin(),
            )
        });
        TenantRun {
            engine,
            service: spec.service.build(),
            controller,
            state,
            fixed,
            rightscale,
            start_epoch: window.start,
            stop_epoch: window.stop,
            end_epoch: window.end,
            first_reuse_epoch: None,
            active_epochs: 0,
            retired: false,
            namespace,
            outbox,
        }
    }

    /// Finalizes every driven tenant run into its outcome record. On
    /// multi-worker configurations the per-tenant finalization (settling-time
    /// extraction, cost metering) fans out across worker threads; outcomes
    /// are reassembled **by tenant index**, so the report order — and every
    /// value in it — is identical to a serial finalization pass.
    fn finish(
        &self,
        runs: Vec<TenantRun>,
        cross_tenant_hits: &[u64],
        failed: &[Option<usize>],
    ) -> Vec<TenantOutcome> {
        let tenant_count = runs.len();
        let workers = self.worker_count(tenant_count);
        if workers <= 1 || tenant_count <= 1 {
            return runs
                .into_iter()
                .enumerate()
                .map(|(i, run)| self.finalize(i, run, cross_tenant_hits[i], failed[i]))
                .collect();
        }
        let chunk_size = tenant_count.div_ceil(workers);
        let mut rest: Vec<(usize, TenantRun)> = runs.into_iter().enumerate().collect();
        let mut chunks: Vec<Vec<(usize, TenantRun)>> = Vec::new();
        while !rest.is_empty() {
            let tail = rest.split_off(chunk_size.min(rest.len()));
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        let finalized: Vec<Vec<(usize, TenantOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, run)| {
                                (i, self.finalize(i, run, cross_tenant_hits[i], failed[i]))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("finalization worker panicked"))
                .collect()
        });
        let mut outcomes: Vec<Option<TenantOutcome>> = (0..tenant_count).map(|_| None).collect();
        for (i, outcome) in finalized.into_iter().flatten() {
            outcomes[i] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every tenant finalized"))
            .collect()
    }

    /// Turns a finished (or retired) tenant run into its outcome record.
    fn finalize(
        &self,
        index: usize,
        run: TenantRun,
        cross_tenant_hits: u64,
        failed_epoch: Option<usize>,
    ) -> TenantOutcome {
        let TenantRun {
            engine,
            controller,
            state,
            fixed,
            rightscale,
            start_epoch,
            first_reuse_epoch,
            active_epochs,
            ..
        } = run;
        let name = controller.name().to_string();
        let dejavu = engine.finish(state, &name);
        let fixed_max = fixed.map(|(c, s)| {
            let n = c.name().to_string();
            engine.finish(s, &n)
        });
        let rightscale = rightscale.map(|(c, s)| {
            let n = c.name().to_string();
            engine.finish(s, &n)
        });
        let spec = &self.scenario.tenants[index];
        TenantOutcome {
            id: spec.id,
            name: spec.name.clone(),
            namespace: spec.namespace(),
            stats: controller.stats().clone(),
            cross_tenant_hits,
            joined_epoch: start_epoch,
            active_epochs,
            first_fleet_reuse_epoch: first_reuse_epoch,
            failed_epoch,
            dejavu,
            fixed_max,
            rightscale,
        }
    }
}

// `ProvisioningController::name` is on the trait; bring the concrete baseline
// types' trait methods into scope for the `finish` calls above.
use dejavu_cloud::ProvisioningController;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use dejavu_simcore::SimDuration;

    fn tiny_scenario(n: usize) -> Scenario {
        ScenarioBuilder::new("tiny", 11, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(n)
            .build()
    }

    #[test]
    fn fleet_runs_are_deterministic_across_worker_counts() {
        let mk = |workers| {
            FleetEngine::new(
                tiny_scenario(4),
                FleetConfig {
                    workers,
                    ..Default::default()
                },
            )
            .run()
        };
        let one = mk(1);
        let four = mk(4);
        for (a, b) in one.tenants.iter().zip(&four.tenants) {
            assert_eq!(
                a.dejavu.total_cost, b.dejavu.total_cost,
                "tenant {}",
                a.name
            );
            assert_eq!(
                a.dejavu.slo_violation_fraction,
                b.dejavu.slo_violation_fraction
            );
            assert_eq!(a.stats.tunings, b.stats.tunings);
            assert_eq!(a.cross_tenant_hits, b.cross_tenant_hits);
            assert_eq!(a.dejavu.latency_ms.values(), b.dejavu.latency_ms.values());
        }
        assert_eq!(one.hit_rate_curve, four.hit_rate_curve);
    }

    #[test]
    fn sharing_reduces_cold_start_tunings_and_lifts_hit_rate() {
        let shared = FleetEngine::new(tiny_scenario(6), FleetConfig::default()).run();
        let isolated = FleetEngine::new(
            tiny_scenario(6),
            FleetConfig {
                sharing: SharingMode::Isolated,
                ..Default::default()
            },
        )
        .run();
        assert!(shared.total_fleet_reuses() > 0, "fleet reuse never fired");
        assert!(
            shared.total_tunings() < isolated.total_tunings(),
            "sharing did not avoid tunings: {} vs {}",
            shared.total_tunings(),
            isolated.total_tunings()
        );
        assert!(
            shared.fleet_hit_rate() > isolated.fleet_hit_rate(),
            "sharing did not lift hit rate: {} vs {}",
            shared.fleet_hit_rate(),
            isolated.fleet_hit_rate()
        );
        let snapshot = shared.shared_repo.as_ref().expect("shared snapshot");
        assert!(snapshot.entries > 0);
        assert!(snapshot.stats.cross_tenant_hits > 0);
        assert!(isolated.shared_repo.is_none());
        assert!(!shared.warm_start);
        assert_eq!(shared.hit_rate_curve.len(), shared.epochs);
        assert_eq!(shared.transport.name, "bsp");
        // A barrier fleet's views are always perfectly fresh, and it records
        // one observation per tenant-epoch actually stepped.
        assert_eq!(shared.transport.view_staleness.max(), 0);
        assert_eq!(
            shared.transport.view_staleness.total(),
            (6 * shared.epochs) as u64
        );
    }

    #[test]
    fn baselines_ride_along_when_requested() {
        let report = FleetEngine::new(
            tiny_scenario(2),
            FleetConfig {
                run_baselines: true,
                ..Default::default()
            },
        )
        .run();
        for t in &report.tenants {
            let fixed = t.fixed_max.as_ref().expect("fixed baseline present");
            assert!(fixed.total_cost >= t.dejavu.total_cost * 0.5);
            assert!(t.rightscale.is_some());
        }
        assert!(report.total_fixed_max_cost().unwrap() > 0.0);
    }

    #[test]
    fn a_panicking_tenant_is_retired_and_the_rest_finish() {
        // Poisoning a tenant's outbox makes its first buffered publish panic
        // mid-step. Every transport must catch the unwind, retire just that
        // tenant (surfacing the epoch in the report), and let the survivors
        // run to completion.
        let poison = |runs: &mut [TenantRun]| {
            let outbox = Arc::clone(runs[1].outbox.as_ref().expect("shared-mode outbox"));
            std::thread::spawn(move || {
                let _guard = outbox.lock().unwrap();
                panic!("poison tenant 1's outbox");
            })
            .join()
            .unwrap_err();
        };
        for transport in [
            TransportConfig::Bsp,
            TransportConfig::BoundedStaleness { staleness: 1 },
            TransportConfig::WorkStealing {
                threads: 2,
                staleness: 0,
                adaptive: false,
            },
        ] {
            let engine = FleetEngine::new(tiny_scenario(3), FleetConfig::default());
            let shared = Arc::new(SharedSignatureRepository::new(engine.config().repo.clone()));
            let report = engine.run_tampered(shared, transport.backend().as_ref(), &poison);
            let label = format!("{transport:?}");
            assert_eq!(report.tenants_failed(), 1, "{label}");
            assert!(
                report.tenants[1].failed_epoch.is_some(),
                "{label}: the poisoned tenant never failed"
            );
            for (i, t) in report.tenants.iter().enumerate() {
                if i == 1 {
                    continue;
                }
                assert_eq!(t.failed_epoch, None, "{label}: tenant {i}");
                assert!(
                    t.active_epochs == report.epochs,
                    "{label}: survivor {i} stepped {} of {} epochs",
                    t.active_epochs,
                    report.epochs
                );
            }
            assert!(
                report.render().contains("tenants failed"),
                "{label}: report hides the failure"
            );
        }
    }

    #[test]
    fn staggered_arrivals_and_departures_shape_the_run() {
        let scenario = ScenarioBuilder::new("churn", 5, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .stagger_arrivals(
                2,
                SimDuration::from_hours(6.0),
                SimDuration::from_hours(3.0),
            )
            .depart_at(0, SimDuration::from_hours(12.0))
            .build();
        let report = FleetEngine::new(scenario, FleetConfig::default()).run();
        // 2 days + the latest joiner's 9 h offset = 57 one-hour epochs.
        assert_eq!(report.epochs, 57);
        let t = &report.tenants;
        assert_eq!((t[0].joined_epoch, t[1].joined_epoch), (0, 0));
        assert_eq!((t[2].joined_epoch, t[3].joined_epoch), (6, 9));
        // The departing tenant simulated only 12 of its 48 hours.
        assert_eq!(t[0].active_epochs, 12);
        assert_eq!(t[0].dejavu.load.len(), 12 * 6);
        assert_eq!(t[1].active_epochs, 48);
        // Late joiners still complete their full trace, shifted.
        assert_eq!(t[3].active_epochs, 48);
        assert_eq!(t[3].dejavu.load.len(), 48 * 6);
    }

    #[test]
    fn late_joiner_entries_survive_ttl_sweeps_on_the_global_clock() {
        // Tenant 1 joins at hour 30 with a 24 h TTL in force. Its publishes
        // must carry *global* timestamps: were they tenant-local, the first
        // barrier sweep after its join (global hour 31+) would see them as
        // 30-hours-old and reap them on sight.
        let scenario = ScenarioBuilder::new("ttl-churn", 11, 1)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(2)
            .arrive_at(1, SimDuration::from_hours(30.0))
            .build();
        let engine = FleetEngine::new(
            scenario,
            FleetConfig {
                repo: SharedRepoConfig {
                    ttl: Some(SimDuration::from_hours(24.0)),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let repo = Arc::new(SharedSignatureRepository::new(engine.config().repo.clone()));
        engine.run_on(Arc::clone(&repo));
        let snapshot = repo.to_snapshot();
        let late_entries: Vec<_> = snapshot
            .namespaces
            .iter()
            .flat_map(|ns| &ns.entries)
            .filter(|e| e.owner == 1)
            .collect();
        assert!(
            !late_entries.is_empty(),
            "the late joiner's entries were swept away"
        );
        // Its timestamps are global: at or after its hour-30 join barrier.
        for e in &late_entries {
            assert!(
                e.tuned_at_secs >= 30.0 * 3600.0,
                "tenant-local timestamp {} leaked into the shared store",
                e.tuned_at_secs
            );
        }
        // The founder's day-one entries aged out under the same TTL.
        assert!(repo.stats().evictions > 0, "TTL never evicted anything");
    }

    #[test]
    fn warm_start_resumes_the_fleet_clock_so_ttls_span_restarts() {
        let ttl_config = || FleetConfig {
            repo: SharedRepoConfig {
                ttl: Some(SimDuration::from_hours(24.0)),
                ..Default::default()
            },
            ..Default::default()
        };
        // Seed fleet: 2 days with a 24 h TTL; its clock ends at hour 48.
        let seed = FleetEngine::new(tiny_scenario(3), ttl_config());
        let repo = Arc::new(SharedSignatureRepository::new(seed.config().repo.clone()));
        seed.run_on(Arc::clone(&repo));
        assert_eq!(repo.clock().as_secs(), 48.0 * 3600.0);
        let evictions_at_snapshot = repo.stats().evictions;
        let entries_at_snapshot = repo.len();
        assert!(entries_at_snapshot > 0, "seed fleet left no entries");
        let snapshot = repo.save_snapshot();

        // Warm run: its barrier sweeps continue at hour 49, 50, …, so the
        // seeded day-two entries age past the TTL *during* the warm run
        // instead of being treated as freshly tuned at warm hour zero.
        let newcomer = FleetEngine::new(tiny_scenario(1), ttl_config());
        let (_, warm_repo) = newcomer.run_warm(&snapshot).expect("snapshot loads");
        assert_eq!(warm_repo.clock().as_secs(), (48.0 + 48.0) * 3600.0);
        assert!(
            warm_repo.stats().evictions > evictions_at_snapshot,
            "seeded entries never aged out during the warm run ({} vs {})",
            warm_repo.stats().evictions,
            evictions_at_snapshot
        );
    }

    #[test]
    fn warm_start_round_trips_through_snapshots() {
        let seeding = FleetEngine::new(tiny_scenario(4), FleetConfig::default());
        let repo = Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default()));
        let cold = seeding.run_on(Arc::clone(&repo));
        assert!(!cold.warm_start);
        let snapshot = repo.save_snapshot();

        let newcomer = FleetEngine::new(tiny_scenario(1), FleetConfig::default());
        let (warm, warm_repo) = newcomer.run_warm(&snapshot).expect("snapshot loads");
        assert!(warm.warm_start);
        // The newcomer converges faster than a cold-started twin.
        let cold_single = newcomer.run();
        let warm_first = warm.tenants[0].first_fleet_reuse_epoch.expect("warm reuse");
        // When the cold twin never reused, warm is strictly better already.
        if let Some(cold_first) = cold_single.tenants[0].first_fleet_reuse_epoch {
            assert!(warm_first <= cold_first);
        }
        assert!(warm.total_fleet_reuses() > 0);
        // The repository kept evolving and can be persisted again.
        assert!(warm_repo.save_snapshot().len() >= snapshot.len());
    }

    #[test]
    fn bounded_staleness_zero_matches_the_barrier_on_a_tiny_fleet() {
        let bsp = FleetEngine::new(tiny_scenario(3), FleetConfig::default()).run();
        let async0 = FleetEngine::new(
            tiny_scenario(3),
            FleetConfig {
                transport: TransportConfig::BoundedStaleness { staleness: 0 },
                ..Default::default()
            },
        )
        .run();
        assert_eq!(async0.transport.name, "async(staleness=0)");
        assert_eq!(async0.hit_rate_curve, bsp.hit_rate_curve);
        for (a, b) in bsp.tenants.iter().zip(&async0.tenants) {
            assert_eq!(a.dejavu.total_cost, b.dejavu.total_cost);
            assert_eq!(a.stats.tunings, b.stats.tunings);
            assert_eq!(a.cross_tenant_hits, b.cross_tenant_hits);
        }
        assert_eq!(async0.transport.view_staleness.max(), 0);
    }

    #[test]
    fn work_stealing_zero_staleness_matches_the_barrier_at_any_thread_cap() {
        let bsp = FleetEngine::new(tiny_scenario(4), FleetConfig::default()).run();
        for threads in [1, 3, 8] {
            let steal = FleetEngine::new(
                tiny_scenario(4),
                FleetConfig {
                    transport: TransportConfig::WorkStealing {
                        threads,
                        staleness: 0,
                        adaptive: false,
                    },
                    ..Default::default()
                },
            )
            .run();
            assert_eq!(
                steal.transport.name,
                format!("steal(threads={threads},staleness=0)")
            );
            assert_eq!(
                steal.hit_rate_curve, bsp.hit_rate_curve,
                "{threads} threads"
            );
            for (a, b) in bsp.tenants.iter().zip(&steal.tenants) {
                assert_eq!(
                    a.dejavu.total_cost, b.dejavu.total_cost,
                    "{threads} threads"
                );
                assert_eq!(a.stats.tunings, b.stats.tunings, "{threads} threads");
                assert_eq!(
                    a.cross_tenant_hits, b.cross_tenant_hits,
                    "{threads} threads"
                );
            }
            assert_eq!(steal.transport.view_staleness.max(), 0);
        }
    }

    #[test]
    fn work_stealing_respects_its_bound_on_a_capped_pool() {
        let k = 2;
        let report = FleetEngine::new(
            tiny_scenario(5),
            FleetConfig {
                transport: TransportConfig::WorkStealing {
                    threads: 2,
                    staleness: k,
                    adaptive: false,
                },
                ..Default::default()
            },
        )
        .run();
        assert!(report.transport.view_staleness.max() <= k);
        assert_eq!(
            report.transport.view_staleness.total(),
            (5 * report.epochs) as u64
        );
        assert!(report.transport.reuse_staleness.max() <= k);
        assert_eq!(report.hit_rate_curve.len(), report.epochs);
        assert!(report.total_fleet_reuses() > 0);
    }

    #[test]
    fn bounded_staleness_respects_its_bound_and_reports_telemetry() {
        let k = 2;
        let report = FleetEngine::new(
            tiny_scenario(4),
            FleetConfig {
                transport: TransportConfig::BoundedStaleness { staleness: k },
                ..Default::default()
            },
        )
        .run();
        assert!(report.transport.view_staleness.max() <= k);
        assert_eq!(
            report.transport.view_staleness.total(),
            (4 * report.epochs) as u64
        );
        assert!(report.transport.reuse_staleness.max() <= k);
        assert_eq!(report.hit_rate_curve.len(), report.epochs);
        assert!(report.total_fleet_reuses() > 0);
    }
}
