//! Helpers shared by the cross-transport differential fuzzer
//! (`tests/differential.rs`) and the fault-schedule fuzzer
//! (`tests/fault_schedule.rs`): the seeded case harness, the scenario /
//! repository generators, and the bit-match assertion both fuzzers pin
//! their invariants with.

#![allow(dead_code)] // each test binary uses its own subset

use dejavu::fleet::{FleetReport, Scenario, ScenarioBuilder, SharedRepoConfig};
use dejavu::simcore::{SimDuration, SimRng};

pub const D_SEED: u64 = 0xD1FF_0FF5_7EA1_CA5E;

/// Runs `body` for `n` deterministic random cases (the `DEJAVU_PROPTEST_CASES`
/// environment variable overrides `n`), labelling failures with the case
/// index so they can be replayed.
pub fn cases(n: u64, mut body: impl FnMut(&mut SimRng, u64)) {
    let n = std::env::var("DEJAVU_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(n);
    for case in 0..n {
        let mut rng = SimRng::seed_from_u64(D_SEED ^ case);
        body(&mut rng, case);
    }
}

/// Generates a random fleet scenario: 3–7 tenants drawn from the scenario
/// families (diurnal / spike / sine / interference / SPECweb mixes — i.e.
/// several namespaces, hence several shards, with skewed tenant counts),
/// random observation ticks, and random churn windows (staggered arrivals,
/// a mid-run departure).
pub fn fuzz_scenario(rng: &mut SimRng, case: u64) -> Scenario {
    let days = 1 + rng.uniform_usize(2);
    let tick = [600.0, 900.0, 1200.0][rng.uniform_usize(3)];
    let mut builder = ScenarioBuilder::new(format!("fuzz-{case}"), D_SEED ^ (case << 8), days)
        .tick(SimDuration::from_secs(tick));
    let diurnal = 1 + rng.uniform_usize(3);
    builder = builder.diurnal_fleet(diurnal);
    let mut total = diurnal;
    if rng.uniform01() < 0.5 {
        let n = 1 + rng.uniform_usize(2);
        builder = builder.sine_sweep(n);
        total += n;
    }
    if rng.uniform01() < 0.35 {
        let n = 1 + rng.uniform_usize(2);
        builder = builder.spike_storm(n);
        total += n;
    }
    if rng.uniform01() < 0.3 {
        let n = 1 + rng.uniform_usize(2);
        builder = builder.specweb_fleet(n);
        total += n;
    }
    if rng.uniform01() < 0.25 {
        builder = builder.interference_heavy(1);
        total += 1;
    }
    // Churn: a random suffix of the fleet joins staggered…
    if total >= 2 && rng.uniform01() < 0.6 {
        let from = 1 + rng.uniform_usize(total - 1);
        builder = builder.stagger_arrivals(
            from,
            SimDuration::from_hours(1.0 + rng.uniform(0.0, 10.0)),
            SimDuration::from_hours(1.0 + rng.uniform(0.0, 4.0)),
        );
    }
    // …and a random tenant leaves mid-run (possibly one that joined late —
    // EpochWindow clamps the degenerate stop-before-start case).
    if rng.uniform01() < 0.5 {
        let tenant = rng.uniform_usize(total);
        builder = builder.depart_at(
            tenant,
            SimDuration::from_hours(6.0 + rng.uniform(0.0, 18.0)),
        );
    }
    builder.build()
}

/// Random repository configuration: shard counts from the degenerate 1 up
/// to 16 (shard routing skew is what the per-shard frontiers react to) and
/// a TTL short enough to expire entries mid-run about half the time.
pub fn fuzz_repo(rng: &mut SimRng) -> SharedRepoConfig {
    SharedRepoConfig {
        shards: 1 + rng.uniform_usize(16),
        ttl: (rng.uniform01() < 0.5).then(|| SimDuration::from_hours(rng.uniform(8.0, 36.0))),
        ..Default::default()
    }
}

/// The thread caps every fuzzed scenario is driven at.
pub const THREAD_CAPS: [usize; 3] = [1, 2, 4];

/// Asserts that two fleet reports describe bit-identical runs: every
/// per-tenant result, the convergence bookkeeping, the hit-rate curve, and
/// the shared repository's final state and statistics (the eviction counts
/// are what pin the frontier-aware per-shard TTL sweep).
pub fn assert_reports_bit_match(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(a.epochs, b.epochs, "{label}: epochs");
    assert_eq!(a.warm_start, b.warm_start, "{label}: warm flag");
    assert_eq!(a.hit_rate_curve, b.hit_rate_curve, "{label}: curve");
    assert_eq!(a.tenants.len(), b.tenants.len(), "{label}: tenant count");
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        let t = &x.name;
        assert_eq!(x.dejavu.total_cost, y.dejavu.total_cost, "{label} {t}");
        assert_eq!(x.dejavu.reuse_cost, y.dejavu.reuse_cost, "{label} {t}");
        assert_eq!(
            x.dejavu.slo_violation_fraction, y.dejavu.slo_violation_fraction,
            "{label} {t}"
        );
        assert_eq!(
            x.dejavu.latency_ms.values(),
            y.dejavu.latency_ms.values(),
            "{label} {t}"
        );
        assert_eq!(
            x.dejavu.instance_count.values(),
            y.dejavu.instance_count.values(),
            "{label} {t}"
        );
        assert_eq!(x.stats.tunings, y.stats.tunings, "{label} {t}");
        assert_eq!(x.stats.fleet_reuses, y.stats.fleet_reuses, "{label} {t}");
        assert_eq!(
            x.stats.repository.hits, y.stats.repository.hits,
            "{label} {t}"
        );
        assert_eq!(
            x.stats.repository.misses, y.stats.repository.misses,
            "{label} {t}"
        );
        assert_eq!(x.cross_tenant_hits, y.cross_tenant_hits, "{label} {t}");
        assert_eq!(x.joined_epoch, y.joined_epoch, "{label} {t}");
        assert_eq!(x.active_epochs, y.active_epochs, "{label} {t}");
        assert_eq!(
            x.first_fleet_reuse_epoch, y.first_fleet_reuse_epoch,
            "{label} {t}"
        );
        assert_eq!(x.failed_epoch, y.failed_epoch, "{label} {t}");
    }
    let (ra, rb) = (a.shared_repo.as_ref(), b.shared_repo.as_ref());
    assert_eq!(ra.is_some(), rb.is_some(), "{label}: repo snapshot");
    if let (Some(ra), Some(rb)) = (ra, rb) {
        assert_eq!(ra.entries, rb.entries, "{label}: repo entries");
        assert_eq!(ra.anchors, rb.anchors, "{label}: repo anchors");
        assert_eq!(ra.stats, rb.stats, "{label}: repo stats");
        assert_eq!(ra.shard_stats, rb.shard_stats, "{label}: shard stats");
    }
}
