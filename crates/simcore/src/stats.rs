//! Online statistics: running mean/variance, percentiles and histograms.
//!
//! These accumulators back every latency, QoS and cost series in the
//! experiments, so they avoid storing anything beyond what the reports need.

use serde::{Deserialize, Serialize};

/// Welford-style running mean/variance plus min/max, with exact percentiles on
/// demand (samples are retained; the experiments keep at most a few hundred
/// thousand points, which is well within budget).
///
/// # Example
///
/// ```
/// use dejavu_simcore::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
        }
    }

    /// Records one sample.
    ///
    /// Non-finite samples are ignored (and counted nowhere) so that a model
    /// glitch cannot poison an entire experiment series.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.samples.push(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        for &x in &other.samples {
            self.record(x);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, or 0.0 if fewer than two samples.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum sample, if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum sample, if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Exact percentile in `[0, 100]` using nearest-rank interpolation, or
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = (p / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Fraction of samples for which `pred` holds, or 0.0 if empty.
    pub fn fraction_where<F: Fn(f64) -> bool>(&self, pred: F) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&x| pred(x)).count() as f64 / self.samples.len() as f64
    }

    /// Access to the raw recorded samples (in insertion order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
///
/// # Example
///
/// ```
/// use dejavu_simcore::Histogram;
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(95.0);
/// h.record(150.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "histogram bounds must satisfy lo < hi");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total number of recorded samples, including under/overflow.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The `[lo, hi)` range of bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.count(), 8);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.fraction_where(|_| true), 0.0);
    }

    #[test]
    fn percentiles() {
        let s: OnlineStats = (1..=100).map(|x| x as f64).collect();
        assert!((s.percentile(0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((s.percentile(100.0).unwrap() - 100.0).abs() < 1e-9);
        let p50 = s.percentile(50.0).unwrap();
        assert!((p50 - 50.5).abs() < 1e-9, "p50 {p50}");
        let p95 = s.percentile(95.0).unwrap();
        assert!((95.0..=96.0).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn fraction_where_counts_correctly() {
        let s: OnlineStats = (1..=10).map(|x| x as f64).collect();
        assert!((s.fraction_where(|x| x > 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_combines() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let b: OnlineStats = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn std_error_shrinks_with_count() {
        let small: OnlineStats = (0..10).map(|x| x as f64).collect();
        let big: OnlineStats = (0..1000).map(|x| (x % 10) as f64).collect();
        assert!(big.std_error() < small.std_error());
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 12.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_count(0), 2); // 0.5, 1.5
        assert_eq!(h.bucket_count(1), 1); // 2.5
        assert_eq!(h.bucket_count(4), 1); // 9.9
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.num_buckets(), 5);
        let (lo, hi) = h.bucket_range(1);
        assert!((lo - 2.0).abs() < 1e-12 && (hi - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
