//! dejavu-serve: the shared signature repository as an online service.
//!
//! DejaVu's repository is fleet infrastructure — one tuning cache that many
//! tenant controllers consult — and in a real deployment those controllers
//! are separate processes. This crate puts the in-process
//! [`SharedSignatureRepository`](dejavu_fleet::SharedSignatureRepository)
//! behind a small length-prefixed wire protocol so it can be hosted as a
//! daemon (TCP or Unix socket) and consumed by remote tenants:
//!
//! - [`protocol`] — the frame codec and typed [`WireError`]s: lookup,
//!   peek, publish, commit-batch, eviction sweeps, stats, and snapshot
//!   round trips, all bit-exact (`f64` travels as raw bits).
//! - [`server`] — the daemon: thread-per-connection sessions over the
//!   repository's wait-free read path, admission control
//!   ([`ServeConfig::max_sessions`]), and per-tenant usage accounting.
//! - [`client`] — [`RemoteRepository`], a
//!   [`RepositoryClient`](dejavu_fleet::RepositoryClient) speaking the
//!   protocol, so `FleetEngine::run_on_client` drives a served repository
//!   with the same scenario code as an in-process one. Remote runs
//!   bit-match local runs; `tests/wire.rs` pins report and eviction-count
//!   equality.
//!
//! The `dejavu-serve` binary hosts a repository from the command line
//! (`dejavu-serve --listen 127.0.0.1:7117`, optionally seeded with
//! `--snapshot-in`).

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::RemoteRepository;
pub use protocol::{Request, Response, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{
    serve_tcp, serve_tcp_persistent, Endpoint, ServeConfig, ServePersistence, ServerHandle,
    UsageSnapshot,
};

#[cfg(unix)]
pub use server::{serve_unix, serve_unix_persistent};
