//! The `fleet` experiment: runs the standard mixed fleet twice — once with the
//! shared signature repository, once with per-tenant isolated repositories —
//! and reports what sharing buys: a higher repository hit rate, fewer
//! cold-start tuning runs, and the fleet-wide cost picture against the
//! `FixedMax` and `RightScale` baselines.
//!
//! ```text
//! cargo run -p dejavu-experiments --release -- fleet --tenants 200
//! ```

use crate::report::{pct, Report};
use dejavu_fleet::{standard_fleet, FleetConfig, FleetEngine, FleetReport, SharingMode};

/// Result of the fleet comparison.
#[derive(Debug, Clone)]
pub struct FleetFigure {
    /// The fleet with the shared repository.
    pub shared: FleetReport,
    /// The same fleet with isolated per-tenant repositories.
    pub isolated: FleetReport,
}

impl FleetFigure {
    /// Renders the comparison as a text report.
    pub fn report(&self) -> Report {
        let mut r = Report::new("Fleet: shared vs isolated signature repositories");
        r.kv("tenants", self.shared.tenants.len());
        r.kv("epochs", self.shared.epochs);
        r.kv("hit rate (shared)", pct(self.shared.fleet_hit_rate()));
        r.kv("hit rate (isolated)", pct(self.isolated.fleet_hit_rate()));
        r.kv("tuning runs (shared)", self.shared.total_tunings());
        r.kv("tuning runs (isolated)", self.isolated.total_tunings());
        r.kv(
            "tunings avoided via fleet reuse",
            self.shared.total_fleet_reuses(),
        );
        r.kv("cross-tenant hits", self.shared.total_cross_tenant_hits());
        r.kv(
            "SLO violation (shared)",
            pct(self.shared.aggregate_slo_violation()),
        );
        r.kv(
            "SLO violation (isolated)",
            pct(self.isolated.aggregate_slo_violation()),
        );
        r.kv(
            "DejaVu cost (shared)",
            format!("${:.2}", self.shared.total_cost()),
        );
        if let (Some(fixed), Some(right)) = (
            self.shared.total_fixed_max_cost(),
            self.shared.total_rightscale_cost(),
        ) {
            r.kv("FixedMax cost", format!("${fixed:.2}"));
            r.kv("RightScale cost", format!("${right:.2}"));
            r.kv(
                "savings vs FixedMax",
                pct(1.0 - self.shared.total_cost() / fixed.max(f64::MIN_POSITIVE)),
            );
        }
        if let Some(repo) = &self.shared.shared_repo {
            r.kv(
                "shared repo",
                format!(
                    "{} entries / {} anchors / {} shards",
                    repo.entries,
                    repo.anchors,
                    repo.shard_stats.len()
                ),
            );
        }
        r.line("");
        r.line(self.shared.render());
        r
    }
}

/// Runs the fleet comparison for `tenants` tenants over `days` days.
pub fn run_with(seed: u64, tenants: usize, days: usize, baselines: bool) -> FleetFigure {
    let config = |sharing, run_baselines| FleetConfig {
        sharing,
        run_baselines,
        ..Default::default()
    };
    let shared = FleetEngine::new(
        standard_fleet(tenants, days, seed),
        config(SharingMode::Shared, baselines),
    )
    .run();
    // The baselines ignore the repository, so their runs are identical in both
    // fleets; only the shared fleet pays for them.
    let isolated = FleetEngine::new(
        standard_fleet(tenants, days, seed),
        config(SharingMode::Isolated, false),
    )
    .run();
    FleetFigure { shared, isolated }
}

/// Runs the default-size fleet comparison (40 tenants, 3 days, baselines on).
pub fn run(seed: u64) -> FleetFigure {
    run_with(seed, 40, 3, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_strictly_beats_isolation_on_hit_rate() {
        let fig = run_with(3, 8, 2, false);
        assert!(
            fig.shared.fleet_hit_rate() > fig.isolated.fleet_hit_rate(),
            "shared {} vs isolated {}",
            fig.shared.fleet_hit_rate(),
            fig.isolated.fleet_hit_rate()
        );
        assert!(fig.shared.total_tunings() < fig.isolated.total_tunings());
        let text = fig.report().into_text();
        assert!(text.contains("hit rate (shared)"));
    }
}
