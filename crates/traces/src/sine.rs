//! Sine-wave load traces, used by the paper's motivating experiment (Figure 1):
//! a RUBiS workload whose volume changes every 10 minutes following a sine
//! wave that approximates diurnal variation.

use crate::trace::{LoadTrace, TraceError};
use dejavu_simcore::SimDuration;

/// Generates a sine-wave trace.
///
/// The level oscillates around `base` with the given `amplitude` and `period`,
/// sampled every `step`, for `total` simulated time. Levels are clamped to
/// `[0, 1.5]`.
///
/// # Errors
///
/// Returns a [`TraceError`] if the step is zero, the duration yields no
/// samples, or the base/amplitude produce invalid levels after clamping
/// (cannot happen for finite inputs, but propagated for robustness).
///
/// # Example
///
/// ```
/// use dejavu_simcore::SimDuration;
/// use dejavu_traces::sine::sine_trace;
///
/// // Figure 1: 80 minutes, the workload changes every 10 minutes.
/// let t = sine_trace(
///     "rubis-sine",
///     SimDuration::from_mins(10.0),
///     SimDuration::from_mins(80.0),
///     SimDuration::from_mins(40.0),
///     0.5,
///     0.45,
/// )?;
/// assert_eq!(t.len(), 8);
/// # Ok::<(), dejavu_traces::TraceError>(())
/// ```
pub fn sine_trace(
    name: &str,
    step: SimDuration,
    total: SimDuration,
    period: SimDuration,
    base: f64,
    amplitude: f64,
) -> Result<LoadTrace, TraceError> {
    if step.is_zero() {
        return Err(TraceError::InvalidStep);
    }
    let n = (total.as_secs() / step.as_secs()).round() as usize;
    if n == 0 {
        return Err(TraceError::Empty);
    }
    let levels = (0..n)
        .map(|i| {
            let t = i as f64 * step.as_secs();
            let phase = 2.0 * std::f64::consts::PI * t / period.as_secs().max(f64::MIN_POSITIVE);
            (base + amplitude * phase.sin()).clamp(0.0, 1.5)
        })
        .collect();
    LoadTrace::new(name, step, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;

    #[test]
    fn figure1_shape() {
        let t = sine_trace(
            "fig1",
            SimDuration::from_mins(10.0),
            SimDuration::from_mins(80.0),
            SimDuration::from_mins(40.0),
            0.5,
            0.45,
        )
        .unwrap();
        assert_eq!(t.len(), 8);
        assert!(t.peak() > 0.9);
        assert!(t.trough() < 0.1);
        // Periodicity: the level repeats every period (4 steps).
        assert!((t.levels()[0] - t.levels()[4]).abs() < 1e-9);
    }

    #[test]
    fn starts_at_base_level() {
        let t = sine_trace(
            "s",
            SimDuration::from_mins(1.0),
            SimDuration::from_mins(10.0),
            SimDuration::from_mins(10.0),
            0.4,
            0.2,
        )
        .unwrap();
        assert!((t.level_at(SimTime::ZERO) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn clamps_to_valid_range() {
        let t = sine_trace(
            "clamped",
            SimDuration::from_mins(5.0),
            SimDuration::from_hours(2.0),
            SimDuration::from_mins(30.0),
            0.9,
            0.9,
        )
        .unwrap();
        assert!(t.levels().iter().all(|&l| (0.0..=1.5).contains(&l)));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            sine_trace(
                "bad",
                SimDuration::ZERO,
                SimDuration::from_mins(10.0),
                SimDuration::from_mins(5.0),
                0.5,
                0.1
            ),
            Err(TraceError::InvalidStep)
        );
        assert_eq!(
            sine_trace(
                "bad",
                SimDuration::from_mins(10.0),
                SimDuration::ZERO,
                SimDuration::from_mins(5.0),
                0.5,
                0.1
            ),
            Err(TraceError::Empty)
        );
    }
}
