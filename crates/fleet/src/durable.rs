//! Durable checkpoints: the on-disk mirror of [`CheckpointStore`].
//!
//! [`DurableCheckpointStore`] spills the delta-chain checkpoints of
//! [`crate::snapshot`] to a checkpoint directory, so recovery survives
//! *process* death, not just thread death — the substrate `dejavu-serve`
//! boots from and the fleet committer writes through behind
//! `--checkpoint-dir`.
//!
//! # Directory layout
//!
//! ```text
//! <dir>/MANIFEST                      versioned index (single source of truth)
//! <dir>/base.snap                     full run-start snapshot (v1 text format)
//! <dir>/seg-<shard>-<epoch>.delta     one v1.1 delta per (shard, epoch) commit
//! <dir>/fold-<shard>-<epochs>.snap    folded whole-shard image (v1.1 delta format)
//! <dir>/*.corrupt                     quarantined files (externally corrupted)
//! ```
//!
//! # Crash safety
//!
//! Every file is written **temp + fsync + atomic rename** (plus a directory
//! fsync), and the manifest is rewritten the same way after the files it
//! references exist. The manifest rename is the commit point: a crash at any
//! other instant leaves the previous manifest, whose files are all still
//! present — obsolete files are only deleted *after* the new manifest is
//! durable, and orphans (renamed in but never referenced) are swept at the
//! next [`DurableCheckpointStore::open`]. Replay therefore always lands on a
//! consistent prefix of the recorded history. [`CrashHook`] injects aborts
//! between these steps so tests can prove it at every boundary.
//!
//! # Compaction
//!
//! The on-disk store mirrors the in-memory cadence/floor rules exactly: it
//! wraps a [`CheckpointStore`] and, whenever a record's compaction pass
//! advances a shard's folded head, writes the folded image as a
//! **whole-shard replacement delta** (`fold-*.snap`) and drops the folded
//! segments from the manifest. A fold file can use the delta format because
//! deltas carry full replacement namespace images and namespaces are never
//! deleted — replaying base + fold + live segments is bit-identical to
//! replaying base + every segment ever recorded.
//!
//! # Recovery
//!
//! [`DurableCheckpointStore::open`] verifies every manifest-listed file
//! (length, then FNV-1a checksum, then decode) before applying it. The base
//! failing is fatal — deltas only carry changes, so nothing is recoverable
//! without it. A segment failing is quarantined to `<name>.corrupt` and the
//! shard's chain stops at the last consistent prefix (later segments cannot
//! apply past the gap); a fold failing quarantines the fold *and* the
//! shard's segments (they anchor above the fold) and the shard falls back to
//! the base image. The manifest is rewritten to the recovered state, so the
//! next record continues the surviving prefix.

use crate::shared_repo::shard_of_namespace;
use crate::snapshot::{
    self, apply_delta, CheckpointStore, DeltaSnapshot, RepoSnapshot, SnapshotError,
};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// The base snapshot file name inside a checkpoint directory.
pub const BASE_FILE: &str = "base.snap";
/// Version line every durable manifest must open with.
pub const DURABLE_MANIFEST_VERSION: &str = "dejavu-durable-manifest v1";

/// FNV-1a 64-bit: the per-file checksum recorded in the manifest. Not
/// cryptographic — it detects torn, truncated and bit-rotted files, which is
/// the failure model here.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What failed, when a durable checkpoint operation did.
#[derive(Debug)]
pub enum DurableError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest's version line is not [`DURABLE_MANIFEST_VERSION`].
    Version {
        /// The line found instead.
        found: String,
    },
    /// The manifest violates its grammar.
    Format {
        /// 1-based manifest line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A listed file's bytes hash differently than the manifest records —
    /// bit rot, or a write that never reached the platter.
    ChecksumMismatch {
        /// The offending file name (directory-relative).
        file: String,
        /// The checksum the manifest records.
        expected: u64,
        /// The checksum of the bytes on disk.
        found: u64,
    },
    /// A listed file is shorter or longer than the manifest records — a torn
    /// or truncated write.
    Truncated {
        /// The offending file name (directory-relative).
        file: String,
        /// The length the manifest records.
        expected: u64,
        /// The length found on disk.
        found: u64,
    },
    /// The manifest references a file that does not exist.
    MissingSegment {
        /// The missing file name (directory-relative).
        file: String,
    },
    /// A listed file passed its length and checksum but does not decode to
    /// the snapshot/delta the manifest promised, or a recorded delta
    /// violates chain order.
    Snapshot {
        /// The offending file name (empty for order violations caught
        /// before any file was written).
        file: String,
        /// The underlying codec error.
        source: SnapshotError,
    },
    /// A [`CrashHook`] fired (tests only): the write path aborted at `site`,
    /// leaving the directory exactly as a process death there would.
    CrashInjected {
        /// The protocol step the abort hit.
        site: CrashSite,
        /// The file being written when it hit.
        file: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { path, source } => {
                write!(f, "durable checkpoint io error at {}: {source}", path.display())
            }
            DurableError::Version { found } => write!(
                f,
                "unsupported durable manifest version {found:?} (expected {DURABLE_MANIFEST_VERSION:?})"
            ),
            DurableError::Format { line, message } => {
                write!(f, "durable manifest line {line}: {message}")
            }
            DurableError::ChecksumMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch in {file}: manifest records {expected:016x}, disk holds {found:016x}"
            ),
            DurableError::Truncated {
                file,
                expected,
                found,
            } => write!(
                f,
                "torn or truncated file {file}: manifest records {expected} bytes, disk holds {found}"
            ),
            DurableError::MissingSegment { file } => {
                write!(f, "manifest references missing file {file}")
            }
            DurableError::Snapshot { file, source } => {
                if file.is_empty() {
                    write!(f, "durable checkpoint: {source}")
                } else {
                    write!(f, "durable checkpoint file {file}: {source}")
                }
            }
            DurableError::CrashInjected { site, file } => {
                write!(f, "injected crash at {site:?} while writing {file}")
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Snapshot { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// The atomic-write protocol step a [`CrashHook`] can abort at. Each file
/// write crosses three boundaries, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Mid temp-file write: a torn temp file (half the bytes) is left
    /// behind, nothing was renamed.
    TempWrite,
    /// The temp file is complete and fsynced, but not renamed into place.
    TempSynced,
    /// The target was renamed in (and the directory fsynced), but nothing
    /// after it happened — for a segment or fold, the manifest still
    /// describes the previous state; for the manifest itself, obsolete-file
    /// cleanup is still pending.
    Renamed,
}

/// A deterministic abort plan for the durable write path, for crash-point
/// fuzzing: the hook fires at the `n`-th protocol boundary it is asked
/// about, making the store return [`DurableError::CrashInjected`] with the
/// directory in exactly the state a process death there would leave.
/// Disabled by default (and on every store built outside a test).
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashHook {
    remaining: Option<u64>,
}

impl CrashHook {
    /// The hook that never fires.
    pub const DISABLED: CrashHook = CrashHook { remaining: None };

    /// Fires at the `n`-th boundary crossed from now (`n >= 1`).
    pub fn after_steps(n: u64) -> Self {
        CrashHook {
            remaining: Some(n.max(1)),
        }
    }

    /// Advances one boundary; true when the abort fires (then disarms).
    fn fires(&mut self) -> bool {
        match self.remaining.as_mut() {
            Some(left) => {
                *left -= 1;
                if *left == 0 {
                    self.remaining = None;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }
}

/// Best-effort directory fsync, so a rename is durable, not just ordered.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: a `<name>.tmp` sibling is written
/// and fsynced, then renamed over the target, then the directory is fsynced.
/// A crash at any instant leaves either the old file or the new one — never
/// a torn mix. This is the helper **every** snapshot/checkpoint file write
/// goes through (`fleet --snapshot-out` included).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

/// One manifest-listed file: name (directory-relative), length, checksum.
#[derive(Debug, Clone)]
struct FileEntry {
    file: String,
    len: u64,
    sum: u64,
}

impl FileEntry {
    fn of(file: String, bytes: &[u8]) -> Self {
        FileEntry {
            len: bytes.len() as u64,
            sum: fnv1a(bytes),
            file,
        }
    }
}

/// A shard's folded head on disk: `epochs` epochs folded into `entry`.
#[derive(Debug, Clone)]
struct ManifestFold {
    epochs: usize,
    entry: FileEntry,
}

/// One live delta segment on disk.
#[derive(Debug, Clone)]
struct ManifestSeg {
    epoch: usize,
    entry: FileEntry,
}

/// The in-memory mirror of the MANIFEST file.
#[derive(Debug, Clone)]
struct Manifest {
    shards: usize,
    base: FileEntry,
    folds: Vec<Option<ManifestFold>>,
    segs: Vec<Vec<ManifestSeg>>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(DURABLE_MANIFEST_VERSION);
        out.push('\n');
        out.push_str(&format!("config shards={}\n", self.shards));
        out.push_str(&format!(
            "base file={} len={} sum={:016x}\n",
            self.base.file, self.base.len, self.base.sum
        ));
        for (shard, fold) in self.folds.iter().enumerate() {
            if let Some(fold) = fold {
                out.push_str(&format!(
                    "fold shard={shard} epochs={} file={} len={} sum={:016x}\n",
                    fold.epochs, fold.entry.file, fold.entry.len, fold.entry.sum
                ));
            }
        }
        for (shard, segs) in self.segs.iter().enumerate() {
            for seg in segs {
                out.push_str(&format!(
                    "seg shard={shard} epoch={} file={} len={} sum={:016x}\n",
                    seg.epoch, seg.entry.file, seg.entry.len, seg.entry.sum
                ));
            }
        }
        out.push_str("end\n");
        out
    }

    fn parse(text: &str) -> Result<Manifest, DurableError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        let (_, version) = lines.next().ok_or_else(|| DurableError::Version {
            found: String::new(),
        })?;
        if version != DURABLE_MANIFEST_VERSION {
            return Err(DurableError::Version {
                found: version.to_string(),
            });
        }
        let fmt = |line: usize, message: String| DurableError::Format { line, message };
        let (line_no, config) = lines
            .next()
            .ok_or_else(|| fmt(2, "missing config line".into()))?;
        let shards = config
            .strip_prefix("config shards=")
            .and_then(|t| t.parse::<usize>().ok())
            .filter(|&s| (1..=(1 << 16)).contains(&s))
            .ok_or_else(|| fmt(line_no, format!("bad config line {config:?}")))?;
        let mut base: Option<FileEntry> = None;
        let mut folds: Vec<Option<ManifestFold>> = vec![None; shards];
        let mut segs: Vec<Vec<ManifestSeg>> = vec![Vec::new(); shards];
        let mut ended = false;
        for (line_no, line) in lines {
            if ended {
                return Err(fmt(line_no, "content after end".into()));
            }
            let mut toks = line.split_whitespace();
            let head = toks
                .next()
                .ok_or_else(|| fmt(line_no, "blank line".into()))?;
            // key=value fields, in fixed order per record kind.
            let mut field = |key: &str| -> Result<String, DurableError> {
                let tok = toks
                    .next()
                    .ok_or_else(|| fmt(line_no, format!("{head} is missing {key}=")))?;
                tok.strip_prefix(key)
                    .and_then(|t| t.strip_prefix('='))
                    .map(str::to_string)
                    .ok_or_else(|| fmt(line_no, format!("expected {key}=, found {tok:?}")))
            };
            let parse_entry =
                |file: String, len: String, sum: String| -> Result<FileEntry, DurableError> {
                    let len = len
                        .parse::<u64>()
                        .map_err(|_| fmt(line_no, format!("bad len {len:?}")))?;
                    let sum = u64::from_str_radix(&sum, 16)
                        .map_err(|_| fmt(line_no, format!("bad sum {sum:?}")))?;
                    if file.contains('/') || file.contains("..") {
                        return Err(fmt(line_no, format!("bad file name {file:?}")));
                    }
                    Ok(FileEntry { file, len, sum })
                };
            match head {
                "base" => {
                    let entry = parse_entry(field("file")?, field("len")?, field("sum")?)?;
                    if base.replace(entry).is_some() {
                        return Err(fmt(line_no, "duplicate base record".into()));
                    }
                }
                "fold" => {
                    let shard = field("shard")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s < shards)
                        .ok_or_else(|| fmt(line_no, "bad fold shard".into()))?;
                    let epochs = field("epochs")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&e| e > 0)
                        .ok_or_else(|| fmt(line_no, "bad fold epochs".into()))?;
                    let entry = parse_entry(field("file")?, field("len")?, field("sum")?)?;
                    if folds[shard]
                        .replace(ManifestFold { epochs, entry })
                        .is_some()
                    {
                        return Err(fmt(line_no, format!("duplicate fold for shard {shard}")));
                    }
                }
                "seg" => {
                    let shard = field("shard")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s < shards)
                        .ok_or_else(|| fmt(line_no, "bad seg shard".into()))?;
                    let epoch = field("epoch")?
                        .parse::<usize>()
                        .map_err(|_| fmt(line_no, "bad seg epoch".into()))?;
                    let entry = parse_entry(field("file")?, field("len")?, field("sum")?)?;
                    segs[shard].push(ManifestSeg { epoch, entry });
                }
                "end" => ended = true,
                other => return Err(fmt(line_no, format!("unknown record {other:?}"))),
            }
            if ended {
                continue;
            }
            if toks.next().is_some() {
                return Err(fmt(line_no, format!("trailing tokens after {head}")));
            }
        }
        if !ended {
            return Err(DurableError::Format {
                line: text.lines().count() + 1,
                message: "missing end record (truncated manifest)".into(),
            });
        }
        let base = base.ok_or_else(|| DurableError::Format {
            line: 2,
            message: "manifest has no base record".into(),
        })?;
        Ok(Manifest {
            shards,
            base,
            folds,
            segs,
        })
    }
}

fn seg_name(shard: usize, epoch: usize) -> String {
    format!("seg-{shard:04}-{epoch:08}.delta")
}

fn fold_name(shard: usize, epochs: usize) -> String {
    format!("fold-{shard:04}-{epochs:08}.snap")
}

/// What one durable [`record`](DurableCheckpointStore::record) wrote —
/// input to the flight recorder's durability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordReceipt {
    /// Bytes of the delta segment written.
    pub segment_bytes: u64,
    /// Bytes of the fold image written (0 when no compaction ran).
    pub fold_bytes: u64,
    /// Whether this record's compaction pass advanced the on-disk fold.
    pub folded: bool,
}

impl RecordReceipt {
    /// Total bytes this record put on disk (segment + fold, manifest
    /// excluded — it is bookkeeping, not payload).
    pub fn bytes(&self) -> u64 {
        self.segment_bytes + self.fold_bytes
    }
}

/// What [`DurableCheckpointStore::open`] recovered — and what it had to give
/// up to land on a consistent prefix.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The merged repository image at the recovered prefix: base + per-shard
    /// fold + live segments. Feed it to
    /// [`crate::SharedSignatureRepository::from_snapshot`] to resume serving
    /// bit-exactly.
    pub resumed: RepoSnapshot,
    /// Per shard: the exclusive end of the recovered chain (the epoch the
    /// next record must carry).
    pub chain_ends: Vec<usize>,
    /// Delta segments (folds included) replayed into `resumed`.
    pub segments_replayed: u64,
    /// Files quarantined to `*.corrupt` (or found missing), with the typed
    /// reason each failed verification. Empty after any crash the atomic
    /// write protocol covers — only external corruption lands here.
    pub quarantined: Vec<(String, DurableError)>,
}

/// The disk-backed [`CheckpointStore`]: same chains, same cadence/floor
/// compaction rules, but every record is durable before it returns.
///
/// Any `Err` from a mutating method leaves the store **fail-stopped**: the
/// in-memory chain and the on-disk manifest may disagree, and the only safe
/// continuation is to drop the store and [`open`](Self::open) the directory
/// again (exactly what a restarted process does).
#[derive(Debug)]
pub struct DurableCheckpointStore {
    dir: PathBuf,
    store: CheckpointStore,
    manifest: Manifest,
    hook: CrashHook,
}

impl DurableCheckpointStore {
    /// Whether `dir` holds a durable checkpoint manifest to resume from.
    pub fn exists(dir: &Path) -> bool {
        dir.join(MANIFEST_FILE).is_file()
    }

    /// Initializes `dir` as a fresh checkpoint directory anchored at `base`
    /// (creating it if needed), wiping any previous durable-checkpoint
    /// files so the new manifest can never resolve against stale ones.
    pub fn create(
        dir: &Path,
        base: RepoSnapshot,
        checkpoint_every: usize,
    ) -> Result<Self, DurableError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if Self::recognizes(&name) {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        let shards = base.shards;
        let text = snapshot::encode(&base);
        let store = CheckpointStore::new(base, checkpoint_every);
        let mut durable = DurableCheckpointStore {
            dir: dir.to_path_buf(),
            store,
            manifest: Manifest {
                shards,
                base: FileEntry::of(BASE_FILE.to_string(), text.as_bytes()),
                folds: vec![None; shards],
                segs: vec![Vec::new(); shards],
            },
            hook: CrashHook::DISABLED,
        };
        durable.write_hooked(BASE_FILE, text.as_bytes())?;
        durable.write_manifest()?;
        Ok(durable)
    }

    /// File names this layer owns (and [`create`](Self::create) may wipe).
    fn recognizes(name: &str) -> bool {
        name == MANIFEST_FILE
            || name == BASE_FILE
            || name.ends_with(".tmp")
            || name.ends_with(".corrupt")
            || (name.starts_with("seg-") && name.ends_with(".delta"))
            || (name.starts_with("fold-") && name.ends_with(".snap"))
    }

    /// Replays `dir`'s manifest and resumes the store at the last consistent
    /// prefix. Corrupt, torn or missing segments are quarantined (see
    /// [`RecoveryReport::quarantined`]); an unreadable manifest or base is
    /// fatal, because nothing is recoverable without them. The manifest is
    /// rewritten to the recovered state and unreferenced leftovers (orphan
    /// segments, stale temp files) are swept.
    pub fn open(
        dir: &Path,
        checkpoint_every: usize,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest_path).map_err(|e| io_err(&manifest_path, e))?;
        let mut manifest = Manifest::parse(&text)?;
        let base_bytes = read_verified(dir, &manifest.base)?;
        let base_text = String::from_utf8(base_bytes).map_err(|_| DurableError::Snapshot {
            file: manifest.base.file.clone(),
            source: SnapshotError::Format {
                line: 0,
                message: "base snapshot is not UTF-8".into(),
            },
        })?;
        let base = snapshot::decode(&base_text).map_err(|source| DurableError::Snapshot {
            file: manifest.base.file.clone(),
            source,
        })?;
        if base.shards != manifest.shards {
            return Err(DurableError::Snapshot {
                file: manifest.base.file.clone(),
                source: SnapshotError::BaseMismatch {
                    message: format!(
                        "base has {} shards, manifest records {}",
                        base.shards, manifest.shards
                    ),
                },
            });
        }

        let mut merged = base;
        let mut chain_ends = vec![0usize; manifest.shards];
        let mut segments_replayed = 0u64;
        let mut quarantined: Vec<(String, DurableError)> = Vec::new();
        for (shard, chain_end) in chain_ends.iter_mut().enumerate() {
            let mut start = 0usize;
            if let Some(fold) = manifest.folds[shard].clone() {
                match load_delta(
                    dir,
                    &fold.entry,
                    shard,
                    fold.epochs.wrapping_sub(1),
                    &merged,
                ) {
                    Ok(delta) => {
                        apply_delta(&mut merged, &delta)
                            .expect("fold deltas are pre-validated against the base");
                        segments_replayed += 1;
                        start = fold.epochs;
                    }
                    Err(err) => {
                        // The fold is the shard's anchor: without it the
                        // segments above it have nothing to apply to. The
                        // shard's consistent prefix is the base image.
                        quarantine(dir, &fold.entry.file);
                        quarantined.push((fold.entry.file.clone(), err));
                        manifest.folds[shard] = None;
                        manifest.segs[shard].clear();
                        *chain_end = 0;
                        continue;
                    }
                }
            }
            let mut good = 0usize;
            let mut bad: Option<(String, DurableError)> = None;
            for seg in &manifest.segs[shard] {
                if seg.epoch != start + good {
                    bad = Some((
                        seg.entry.file.clone(),
                        DurableError::Snapshot {
                            file: seg.entry.file.clone(),
                            source: SnapshotError::DeltaOrder {
                                shard,
                                expected_epoch: start + good,
                                found_epoch: seg.epoch,
                            },
                        },
                    ));
                    break;
                }
                match load_delta(dir, &seg.entry, shard, seg.epoch, &merged) {
                    Ok(delta) => {
                        apply_delta(&mut merged, &delta)
                            .expect("segments are pre-validated against the base");
                        segments_replayed += 1;
                        good += 1;
                    }
                    Err(err) => {
                        bad = Some((seg.entry.file.clone(), err));
                        break;
                    }
                }
            }
            if let Some((file, err)) = bad {
                quarantine(dir, &file);
                quarantined.push((file, err));
                // Everything past the failure anchors above the gap: the
                // consistent prefix ends here, the tail is unreachable.
                manifest.segs[shard].truncate(good);
            }
            *chain_end = start + good;
        }

        let store = CheckpointStore::resume(merged.clone(), &chain_ends, checkpoint_every)
            .map_err(|source| DurableError::Snapshot {
                file: String::new(),
                source,
            })?;
        let mut durable = DurableCheckpointStore {
            dir: dir.to_path_buf(),
            store,
            manifest,
            hook: CrashHook::DISABLED,
        };
        durable.write_manifest()?;
        durable.sweep_unreferenced();
        Ok((
            durable,
            RecoveryReport {
                resumed: merged,
                chain_ends,
                segments_replayed,
                quarantined,
            },
        ))
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The in-memory store this one mirrors, for reads (`materialize`,
    /// `delta`, `chain_end`, telemetry counters).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Consumes the durable wrapper, keeping the in-memory store (the drive
    /// summary path — disk state stays behind for the next open).
    pub fn into_store(self) -> CheckpointStore {
        self.store
    }

    /// See [`CheckpointStore::set_floor`]. Floors gate *future* compaction
    /// only, so they need no disk write of their own.
    pub fn set_floor(&mut self, shard: usize, epoch: usize) -> usize {
        self.store.set_floor(shard, epoch)
    }

    /// Arms the crash-point hook (tests only; see [`CrashHook`]).
    pub fn set_crash_hook(&mut self, hook: CrashHook) {
        self.hook = hook;
    }

    /// Records one delta durably: the segment file is written (temp, fsync,
    /// rename), the in-memory chain advances (running its compaction pass),
    /// any new fold is written the same way, and the manifest is atomically
    /// rewritten — only then are folded-away files deleted. When `record`
    /// returns `Ok`, the delta survives process death.
    pub fn record(&mut self, delta: DeltaSnapshot) -> Result<RecordReceipt, DurableError> {
        let shard = delta.shard;
        let expected = self.store.chain_end(shard);
        if shard >= self.manifest.shards || delta.epoch != expected {
            // Reject before touching the disk, mirroring the in-memory
            // store's chain-order contract.
            return Err(DurableError::Snapshot {
                file: String::new(),
                source: if shard >= self.manifest.shards {
                    SnapshotError::BaseMismatch {
                        message: format!(
                            "delta shard {shard} out of range (store has {} shards)",
                            self.manifest.shards
                        ),
                    }
                } else {
                    SnapshotError::DeltaOrder {
                        shard,
                        expected_epoch: expected,
                        found_epoch: delta.epoch,
                    }
                },
            });
        }
        let file = seg_name(shard, delta.epoch);
        let text = snapshot::encode_delta(&delta);
        self.write_hooked(&file, text.as_bytes())?;
        let mut receipt = RecordReceipt {
            segment_bytes: text.len() as u64,
            ..RecordReceipt::default()
        };
        let folded_before = self.store.folded_epochs(shard);
        self.store
            .record(delta)
            .map_err(|source| DurableError::Snapshot {
                file: file.clone(),
                source,
            })?;
        self.manifest.segs[shard].push(ManifestSeg {
            epoch: expected,
            entry: FileEntry::of(file, text.as_bytes()),
        });
        let folded_after = self.store.folded_epochs(shard);
        let mut obsolete: Vec<String> = Vec::new();
        if folded_after > folded_before {
            // Mirror the in-memory compaction on disk: the folded image
            // becomes a whole-shard replacement delta, and the segments it
            // swallowed leave the manifest.
            let fold = self.fold_delta(shard);
            let fold_file = fold_name(shard, folded_after);
            let fold_text = snapshot::encode_delta(&fold);
            self.write_hooked(&fold_file, fold_text.as_bytes())?;
            receipt.folded = true;
            receipt.fold_bytes = fold_text.len() as u64;
            if let Some(old) = self.manifest.folds[shard].replace(ManifestFold {
                epochs: folded_after,
                entry: FileEntry::of(fold_file, fold_text.as_bytes()),
            }) {
                obsolete.push(old.entry.file);
            }
            let segs = &mut self.manifest.segs[shard];
            let keep_from = segs
                .iter()
                .position(|s| s.epoch >= folded_after)
                .unwrap_or(segs.len());
            obsolete.extend(segs.drain(..keep_from).map(|s| s.entry.file));
        }
        self.write_manifest()?;
        // The new manifest no longer references these; failure to unlink is
        // harmless (the next open sweeps orphans).
        for file in obsolete {
            let _ = fs::remove_file(self.dir.join(file));
        }
        Ok(receipt)
    }

    /// The folded image of `shard` as a whole-shard replacement delta —
    /// valid because deltas carry full namespace images and namespaces are
    /// never deleted, so replacing every namespace of the shard *is* the
    /// folded state.
    fn fold_delta(&self, shard: usize) -> DeltaSnapshot {
        let image = self.store.folded_image(shard);
        DeltaSnapshot {
            shard,
            epoch: self.store.folded_epochs(shard) - 1,
            clock_secs: image.clock_secs,
            namespaces: image
                .namespaces
                .iter()
                .filter(|ns| shard_of_namespace(ns.id, image.shards) == shard)
                .cloned()
                .collect(),
            shard_stats: image.shard_stats[shard],
        }
    }

    /// Atomically rewrites the MANIFEST to the in-memory state.
    fn write_manifest(&mut self) -> Result<(), DurableError> {
        let text = self.manifest.render();
        self.write_hooked(MANIFEST_FILE, text.as_bytes())
    }

    /// [`write_atomic`] with the crash hook consulted at every protocol
    /// boundary (see [`CrashSite`]).
    fn write_hooked(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        if self.hook.fires() {
            // A death mid-write: a torn temp file survives, the target (and
            // the manifest) are untouched.
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(DurableError::CrashInjected {
                site: CrashSite::TempWrite,
                file: name.to_string(),
            });
        }
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
            file.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        if self.hook.fires() {
            return Err(DurableError::CrashInjected {
                site: CrashSite::TempSynced,
                file: name.to_string(),
            });
        }
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        sync_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        if self.hook.fires() {
            return Err(DurableError::CrashInjected {
                site: CrashSite::Renamed,
                file: name.to_string(),
            });
        }
        Ok(())
    }

    /// Removes temp files and segment/fold files the manifest no longer
    /// references (crash leftovers). Quarantined `*.corrupt` files are kept
    /// for inspection. Best effort.
    fn sweep_unreferenced(&self) {
        let mut referenced: Vec<&str> = vec![MANIFEST_FILE];
        referenced.push(&self.manifest.base.file);
        for fold in self.manifest.folds.iter().flatten() {
            referenced.push(&fold.entry.file);
        }
        for segs in &self.manifest.segs {
            for seg in segs {
                referenced.push(&seg.entry.file);
            }
        }
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".corrupt") || !Self::recognizes(&name) {
                continue;
            }
            if !referenced.iter().any(|r| *r == name) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// Reads a manifest-listed file and verifies length then checksum.
fn read_verified(dir: &Path, entry: &FileEntry) -> Result<Vec<u8>, DurableError> {
    let path = dir.join(&entry.file);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(DurableError::MissingSegment {
                file: entry.file.clone(),
            })
        }
        Err(e) => return Err(io_err(&path, e)),
    };
    if bytes.len() as u64 != entry.len {
        return Err(DurableError::Truncated {
            file: entry.file.clone(),
            expected: entry.len,
            found: bytes.len() as u64,
        });
    }
    let found = fnv1a(&bytes);
    if found != entry.sum {
        return Err(DurableError::ChecksumMismatch {
            file: entry.file.clone(),
            expected: entry.sum,
            found,
        });
    }
    Ok(bytes)
}

/// Reads, verifies and decodes one delta file, checking it is the
/// `(shard, epoch)` the manifest promised and that every namespace it
/// carries routes to that shard — so applying it to `base` cannot fail.
fn load_delta(
    dir: &Path,
    entry: &FileEntry,
    shard: usize,
    epoch: usize,
    base: &RepoSnapshot,
) -> Result<DeltaSnapshot, DurableError> {
    let bytes = read_verified(dir, entry)?;
    let snapshot_err = |source: SnapshotError| DurableError::Snapshot {
        file: entry.file.clone(),
        source,
    };
    let text = String::from_utf8(bytes).map_err(|_| {
        snapshot_err(SnapshotError::Format {
            line: 0,
            message: "delta is not UTF-8".into(),
        })
    })?;
    let delta = snapshot::decode_delta(&text).map_err(snapshot_err)?;
    if delta.shard != shard || delta.epoch != epoch {
        return Err(snapshot_err(SnapshotError::Inconsistent {
            message: format!(
                "file carries (shard {}, epoch {}), manifest promised (shard {shard}, epoch {epoch})",
                delta.shard, delta.epoch
            ),
        }));
    }
    for ns in &delta.namespaces {
        let routed = shard_of_namespace(ns.id, base.shards);
        if routed != shard {
            return Err(snapshot_err(SnapshotError::BaseMismatch {
                message: format!("namespace {} routes to shard {routed}, not {shard}", ns.id),
            }));
        }
    }
    Ok(delta)
}

/// Renames a failed file to `<name>.corrupt`, keeping it for inspection
/// while getting it out of every future replay's way. Best effort — a
/// missing file has nothing to rename.
fn quarantine(dir: &Path, file: &str) {
    let _ = fs::rename(dir.join(file), dir.join(format!("{file}.corrupt")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{AnchorSnapshot, EntrySnapshot, NamespaceSnapshot};
    use dejavu_cloud::ResourceAllocation;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A fresh per-test directory under the target tmpdir.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dejavu-durable-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn ns(id: u64, tuned_at: f64, hits: u64) -> NamespaceSnapshot {
        NamespaceSnapshot {
            id,
            anchors: vec![AnchorSnapshot {
                id: 0,
                values: vec![1.0, 2.0, tuned_at],
            }],
            entries: vec![EntrySnapshot {
                anchor: 0,
                bucket: 0,
                allocation: ResourceAllocation::large(2),
                tuned_at_secs: tuned_at,
                owner: 1,
                hits,
                cross_tenant_hits: 0,
            }],
        }
    }

    const SHARDS: usize = 4;

    fn base() -> RepoSnapshot {
        RepoSnapshot {
            shards: SHARDS,
            match_tolerance: 0.1,
            ttl_secs: Some(86_400.0),
            clock_secs: 100.0,
            namespaces: Vec::new(),
            shard_stats: vec![Default::default(); SHARDS],
        }
    }

    /// A deterministic workload: `per_shard` deltas for every shard, each
    /// touching one namespace routed to that shard.
    fn workload(per_shard: usize) -> Vec<DeltaSnapshot> {
        // Find a namespace id routed to each shard.
        let mut ns_for_shard = [None; SHARDS];
        for id in 0..1024u64 {
            let s = shard_of_namespace(id, SHARDS);
            if ns_for_shard[s].is_none() {
                ns_for_shard[s] = Some(id);
            }
        }
        let mut deltas = Vec::new();
        for epoch in 0..per_shard {
            for (shard, id) in ns_for_shard.iter().enumerate() {
                let id = id.expect("every shard has a namespace id under 1024");
                deltas.push(DeltaSnapshot {
                    shard,
                    epoch,
                    clock_secs: 100.0 + (epoch * SHARDS + shard) as f64,
                    namespaces: vec![ns(id, 50.0 + epoch as f64, epoch as u64)],
                    shard_stats: crate::ShardStats {
                        hits: epoch as u64,
                        insertions: 1 + epoch as u64,
                        ..Default::default()
                    },
                });
            }
        }
        deltas
    }

    /// The expected image after the first `chain_ends[shard]` epochs of
    /// `workload` per shard, computed through the in-memory store alone.
    fn expected_image(deltas: &[DeltaSnapshot], chain_ends: &[usize]) -> RepoSnapshot {
        let mut image = base();
        for delta in deltas {
            if delta.epoch < chain_ends[delta.shard] {
                apply_delta(&mut image, delta).unwrap();
            }
        }
        image
    }

    #[test]
    fn roundtrip_without_compaction() {
        let dir = scratch_dir("roundtrip");
        let deltas = workload(3);
        let mut store = DurableCheckpointStore::create(&dir, base(), 0).unwrap();
        for delta in &deltas {
            store.record(delta.clone()).unwrap();
        }
        drop(store);
        let (reopened, report) = DurableCheckpointStore::open(&dir, 0).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.chain_ends, vec![3; SHARDS]);
        assert_eq!(report.resumed, expected_image(&deltas, &[3; SHARDS]));
        // The resumed in-memory store can still materialize any retained
        // epoch — chains without compaction retain everything.
        for shard in 0..SHARDS {
            assert_eq!(reopened.store().chain_end(shard), 3);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_mirrors_in_memory_cadence_and_drops_folded_segments() {
        let dir = scratch_dir("compact");
        let deltas = workload(7);
        let mut durable = DurableCheckpointStore::create(&dir, base(), 2).unwrap();
        let mut memory = CheckpointStore::new(base(), 2);
        let mut folds = 0u64;
        for delta in &deltas {
            let receipt = durable.record(delta.clone()).unwrap();
            memory.record(delta.clone()).unwrap();
            if receipt.folded {
                folds += 1;
            }
            // The wrapped store mirrors the in-memory one record for record.
            assert_eq!(
                durable.store().folded_epochs(delta.shard),
                memory.folded_epochs(delta.shard)
            );
            assert_eq!(
                durable.store().chain_len(delta.shard),
                memory.chain_len(delta.shard)
            );
        }
        assert_eq!(durable.store().compactions(), memory.compactions());
        assert_eq!(folds, memory.compactions());
        // Folded segment files are gone from disk; the manifest-listed set
        // reopens to the full final image.
        let seg_files = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .count();
        let live: usize = (0..SHARDS).map(|s| memory.chain_len(s)).sum();
        assert_eq!(seg_files, live);
        drop(durable);
        let (_, report) = DurableCheckpointStore::open(&dir, 2).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.resumed, expected_image(&deltas, &[7; SHARDS]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn floors_pin_on_disk_compaction_too() {
        let dir = scratch_dir("floor");
        let deltas = workload(6);
        let mut durable = DurableCheckpointStore::create(&dir, base(), 2).unwrap();
        for shard in 0..SHARDS {
            durable.set_floor(shard, 0); // nothing may fold
        }
        for delta in &deltas {
            durable.record(delta.clone()).unwrap();
        }
        assert_eq!(durable.store().compactions(), 0);
        for shard in 0..SHARDS {
            assert_eq!(durable.store().folded_epochs(shard), 0);
        }
        // Raising the floor re-enables folding at the next record.
        durable.set_floor(0, usize::MAX);
        let receipt = durable
            .record(DeltaSnapshot {
                shard: 0,
                epoch: 6,
                clock_secs: 200.0,
                namespaces: Vec::new(),
                shard_stats: Default::default(),
            })
            .unwrap();
        assert!(receipt.folded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_recording_after_reopen() {
        let dir = scratch_dir("resume");
        let deltas = workload(5);
        let (first, rest) = deltas.split_at(2 * SHARDS);
        let mut store = DurableCheckpointStore::create(&dir, base(), 2).unwrap();
        for delta in first {
            store.record(delta.clone()).unwrap();
        }
        drop(store);
        let (mut reopened, report) = DurableCheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(report.chain_ends, vec![2; SHARDS]);
        for delta in rest {
            reopened.record(delta.clone()).unwrap();
        }
        drop(reopened);
        let (_, report) = DurableCheckpointStore::open(&dir, 2).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.resumed, expected_image(&deltas, &[5; SHARDS]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_record_is_rejected_before_touching_disk() {
        let dir = scratch_dir("order");
        let mut store = DurableCheckpointStore::create(&dir, base(), 0).unwrap();
        let err = store
            .record(DeltaSnapshot {
                shard: 0,
                epoch: 3,
                clock_secs: 1.0,
                namespaces: Vec::new(),
                shard_stats: Default::default(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            DurableError::Snapshot {
                source: SnapshotError::DeltaOrder {
                    shard: 0,
                    expected_epoch: 0,
                    found_epoch: 3
                },
                ..
            }
        ));
        // No segment file leaked.
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .count();
        assert_eq!(segs, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    // --- satellite: typed decode error paths -----------------------------

    /// Records 2 epochs per shard and returns (dir, deltas).
    fn seeded_dir(tag: &str) -> (PathBuf, Vec<DeltaSnapshot>) {
        let dir = scratch_dir(tag);
        let deltas = workload(2);
        let mut store = DurableCheckpointStore::create(&dir, base(), 0).unwrap();
        for delta in &deltas {
            store.record(delta.clone()).unwrap();
        }
        (dir, deltas)
    }

    #[test]
    fn truncated_segment_yields_typed_error_and_prefix_recovery() {
        let (dir, deltas) = seeded_dir("trunc");
        let victim = seg_name(1, 1);
        let bytes = fs::read(dir.join(&victim)).unwrap();
        fs::write(dir.join(&victim), &bytes[..bytes.len() - 7]).unwrap();
        let (_, report) = DurableCheckpointStore::open(&dir, 0).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, victim);
        assert!(matches!(
            report.quarantined[0].1,
            DurableError::Truncated { .. }
        ));
        // Shard 1 stops before the torn epoch; everyone else is whole.
        let mut ends = vec![2; SHARDS];
        ends[1] = 1;
        assert_eq!(report.chain_ends, ends);
        assert_eq!(report.resumed, expected_image(&deltas, &ends));
        assert!(dir.join(format!("{victim}.corrupt")).is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_yields_typed_error_and_prefix_recovery() {
        let (dir, deltas) = seeded_dir("sum");
        let victim = seg_name(2, 0);
        let mut bytes = fs::read(dir.join(&victim)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20; // same length, different bytes
        fs::write(dir.join(&victim), &bytes).unwrap();
        let (_, report) = DurableCheckpointStore::open(&dir, 0).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(matches!(
            report.quarantined[0].1,
            DurableError::ChecksumMismatch { .. }
        ));
        // Epoch 0 fell, so epoch 1 is unreachable too: shard 2 is base-only.
        let mut ends = vec![2; SHARDS];
        ends[2] = 0;
        assert_eq!(report.chain_ends, ends);
        assert_eq!(report.resumed, expected_image(&deltas, &ends));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_yields_typed_error_and_prefix_recovery() {
        let (dir, deltas) = seeded_dir("missing");
        let victim = seg_name(3, 1);
        fs::remove_file(dir.join(&victim)).unwrap();
        let (_, report) = DurableCheckpointStore::open(&dir, 0).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(matches!(
            report.quarantined[0].1,
            DurableError::MissingSegment { .. }
        ));
        let mut ends = vec![2; SHARDS];
        ends[3] = 1;
        assert_eq!(report.chain_ends, ends);
        assert_eq!(report.resumed, expected_image(&deltas, &ends));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_manifest_version_yields_typed_error() {
        let (dir, _) = seeded_dir("version");
        let manifest = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let tampered = manifest.replace(DURABLE_MANIFEST_VERSION, "dejavu-durable-manifest v9");
        fs::write(dir.join(MANIFEST_FILE), tampered).unwrap();
        let err = DurableCheckpointStore::open(&dir, 0).unwrap_err();
        assert!(
            matches!(err, DurableError::Version { ref found } if found.contains("v9")),
            "expected Version error, got {err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fold_falls_back_to_base_prefix() {
        let dir = scratch_dir("foldloss");
        let deltas = workload(5);
        let mut store = DurableCheckpointStore::create(&dir, base(), 2).unwrap();
        for delta in &deltas {
            store.record(delta.clone()).unwrap();
        }
        let folded = store.store().folded_epochs(0);
        assert!(folded > 0, "cadence 2 over 5 epochs must fold shard 0");
        drop(store);
        let fold_file = fold_name(0, folded);
        let bytes = fs::read(dir.join(&fold_file)).unwrap();
        fs::write(dir.join(&fold_file), &bytes[..bytes.len() / 2]).unwrap();
        let (_, report) = DurableCheckpointStore::open(&dir, 2).unwrap();
        assert!(matches!(
            report.quarantined[0].1,
            DurableError::Truncated { .. }
        ));
        // The fold anchored everything above it: shard 0 restarts at base.
        let mut ends = vec![5; SHARDS];
        ends[0] = 0;
        assert_eq!(report.chain_ends, ends);
        assert_eq!(report.resumed, expected_image(&deltas, &ends));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_manifest_is_a_typed_format_error() {
        let (dir, _) = seeded_dir("manifest-trunc");
        let manifest = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let cut = manifest.len() - "end\n".len() - 3;
        fs::write(dir.join(MANIFEST_FILE), &manifest[..cut]).unwrap();
        let err = DurableCheckpointStore::open(&dir, 0).unwrap_err();
        assert!(
            matches!(err, DurableError::Format { .. }),
            "expected Format error, got {err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    // --- satellite regression: the atomic write helper -------------------

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = scratch_dir("atomic");
        let path = dir.join("out.snap");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    // --- crash-point fuzzing ---------------------------------------------

    /// Drives the workload against a store armed to crash at boundary `n`.
    /// Returns how many records landed durably before the crash (or None if
    /// the workload completed without reaching boundary `n`).
    fn run_until_crash(
        dir: &Path,
        deltas: &[DeltaSnapshot],
        every: usize,
        n: u64,
    ) -> Option<usize> {
        let mut store = DurableCheckpointStore::create(dir, base(), every).unwrap();
        store.set_crash_hook(CrashHook::after_steps(n));
        for (i, delta) in deltas.iter().enumerate() {
            match store.record(delta.clone()) {
                Ok(_) => {}
                Err(DurableError::CrashInjected { .. }) => return Some(i),
                Err(other) => panic!("unexpected durable error: {other}"),
            }
        }
        None
    }

    /// The invariant the whole layer exists for: an abort at ANY protocol
    /// boundary leaves a directory that opens cleanly (no quarantines — the
    /// atomic protocol never corrupts listed files), lands on a consistent
    /// prefix of the recorded history, and accepts the remaining workload.
    fn assert_crash_recovery(tag: &str, every: usize, per_shard: usize) {
        let deltas = workload(per_shard);
        let mut boundary = 1u64;
        loop {
            let dir = scratch_dir(tag);
            let crashed_at = run_until_crash(&dir, &deltas, every, boundary);
            let (mut reopened, report) =
                DurableCheckpointStore::open(&dir, every).unwrap_or_else(|e| {
                    panic!("boundary {boundary}: recovery failed: {e}");
                });
            assert!(
                report.quarantined.is_empty(),
                "boundary {boundary}: crash must never corrupt manifest-listed files, \
                 quarantined {:?}",
                report.quarantined
            );
            // The recovered prefix is consistent: per shard, exactly the
            // first chain_ends[s] deltas, bit-for-bit.
            assert_eq!(
                report.resumed,
                expected_image(&deltas, &report.chain_ends),
                "boundary {boundary}: resumed image diverges from its prefix"
            );
            // And the run can finish: replay the not-yet-durable tail.
            for delta in &deltas {
                if delta.epoch >= report.chain_ends[delta.shard] {
                    reopened.record(delta.clone()).unwrap();
                }
            }
            drop(reopened);
            let (_, final_report) = DurableCheckpointStore::open(&dir, every).unwrap();
            assert_eq!(
                final_report.resumed,
                expected_image(&deltas, &[per_shard; SHARDS]),
                "boundary {boundary}: finished run diverges from uninterrupted"
            );
            let _ = fs::remove_dir_all(&dir);
            if crashed_at.is_none() {
                break; // boundary beyond the workload's total steps
            }
            boundary += 1;
        }
        assert!(boundary > 1, "the hook never fired — no boundaries covered");
    }

    #[test]
    fn crash_points_always_recover_without_compaction() {
        assert_crash_recovery("crash-flat", 0, 2);
    }

    #[test]
    fn crash_points_always_recover_with_compaction() {
        assert_crash_recovery("crash-fold", 2, 3);
    }

    /// Nightly knob: `DEJAVU_CRASH_CASES=N` re-runs the exhaustive
    /// boundary sweep over N progressively larger workloads.
    #[test]
    fn crash_points_raised_cases() {
        let cases: usize = std::env::var("DEJAVU_CRASH_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        for case in 0..cases {
            let every = 1 + case % 3;
            let per_shard = 3 + case % 4;
            assert_crash_recovery(&format!("crash-case{case}"), every, per_shard);
        }
    }
}
