//! A deterministic event queue keyed by [`SimTime`].
//!
//! Events scheduled at the same instant are delivered in insertion order, which
//! keeps runs reproducible regardless of floating-point ties.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: reverse-ordered by time, then by sequence number.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and lowest
        // sequence number) pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by simulated time.
///
/// # Example
///
/// ```
/// use dejavu_simcore::{event::EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5.0), "b");
/// q.schedule(SimTime::from_secs(5.0), "c");
/// q.schedule(SimTime::from_secs(1.0), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is allowed (the event fires immediately on the
    /// next [`pop`](Self::pop)), which mirrors how controllers may react to a
    /// measurement that has just been taken.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the next event together with its firing time,
    /// advancing the queue's clock to that time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = self.now.max(s.time);
            (self.now, s.event)
        })
    }

    /// Returns the firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Returns the current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_never_goes_backwards_when_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "late");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_secs(), 10.0);
        q.schedule(SimTime::from_secs(1.0), "past");
        let (t2, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert!(t2.as_secs() >= 10.0, "clock must be monotone");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(4.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4.0)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
