//! The shared queueing-based performance model.
//!
//! Every modelled service maps the offered load and the effective capacity it
//! was given to a utilization level and, from there, to latency and QoS. The
//! model is an M/M/k-flavoured approximation: latency grows as `1/(1 - ρ)`
//! and explodes past saturation. Absolute values are calibrated so that the
//! allocations the paper reports (e.g. 1–10 large instances covering the
//! Messenger trace with a 60 ms SLO) fall out of the same arithmetic.

use serde::{Deserialize, Serialize};

/// A point-in-time performance measurement of the service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Mean response latency in milliseconds.
    pub latency_ms: f64,
    /// QoS percentage (fraction of requests meeting their quality target),
    /// only meaningful for services that define one (SPECweb).
    pub qos_percent: f64,
    /// Offered throughput in requests per second.
    pub throughput_rps: f64,
    /// Mean per-instance utilization in `[0, ~1.5]` (values above 1 denote
    /// saturation).
    pub utilization: f64,
}

/// Queueing model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingModel {
    /// Latency at (near-)zero load, in milliseconds.
    pub base_latency_ms: f64,
    /// Capacity units of demand generated when the workload intensity is 1.0
    /// (the trace peak). With a full capacity of 10 units and a demand factor
    /// of 7.5, the peak runs the full-capacity deployment at 75% utilization.
    pub peak_demand_units: f64,
    /// Hard cap on modelled latency (saturated systems time out rather than
    /// queue forever).
    pub max_latency_ms: f64,
    /// Requests per second per unit of demand at intensity 1.0 — only used to
    /// report throughput.
    pub peak_rps: f64,
}

impl Default for QueueingModel {
    fn default() -> Self {
        QueueingModel {
            base_latency_ms: 15.0,
            peak_demand_units: 7.5,
            max_latency_ms: 500.0,
            peak_rps: 10_000.0,
        }
    }
}

impl QueueingModel {
    /// Mean utilization when `intensity` (fraction of peak) is served by
    /// `capacity_units` of effective capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_units` is not positive.
    pub fn utilization(&self, intensity: f64, capacity_units: f64) -> f64 {
        assert!(capacity_units > 0.0, "capacity must be positive");
        (intensity.max(0.0) * self.peak_demand_units / capacity_units).max(0.0)
    }

    /// Mean latency at utilization `rho`.
    pub fn latency_at_utilization(&self, rho: f64) -> f64 {
        let rho = rho.max(0.0);
        let latency = if rho < 0.95 {
            self.base_latency_ms / (1.0 - rho)
        } else {
            // Past saturation: linear blow-up on top of the near-saturation value.
            let at_sat = self.base_latency_ms / 0.05;
            at_sat * (1.0 + (rho - 0.95) * 20.0)
        };
        latency.min(self.max_latency_ms)
    }

    /// Convenience: latency for an (intensity, capacity) pair.
    pub fn latency_ms(&self, intensity: f64, capacity_units: f64) -> f64 {
        self.latency_at_utilization(self.utilization(intensity, capacity_units))
    }

    /// QoS percentage at utilization `rho`: ~100% until a knee, then a steep
    /// linear decline (the SPECweb compliance criterion).
    pub fn qos_at_utilization(&self, rho: f64) -> f64 {
        const KNEE: f64 = 0.87;
        if rho <= KNEE {
            100.0
        } else {
            (100.0 - (rho - KNEE) * 150.0).max(20.0)
        }
    }

    /// Offered throughput in requests per second at `intensity`.
    pub fn throughput_rps(&self, intensity: f64) -> f64 {
        intensity.max(0.0) * self.peak_rps
    }

    /// Full performance sample for an (intensity, capacity) pair with an
    /// optional latency multiplier for transient penalties (re-partitioning,
    /// cold caches).
    pub fn sample(
        &self,
        intensity: f64,
        capacity_units: f64,
        latency_multiplier: f64,
    ) -> PerfSample {
        let rho = self.utilization(intensity, capacity_units);
        PerfSample {
            latency_ms: (self.latency_at_utilization(rho) * latency_multiplier.max(1.0))
                .min(self.max_latency_ms),
            qos_percent: self.qos_at_utilization(rho),
            throughput_rps: self.throughput_rps(intensity),
            utilization: rho,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_monotone_in_load_and_capacity() {
        let m = QueueingModel::default();
        assert!(m.latency_ms(0.8, 10.0) > m.latency_ms(0.4, 10.0));
        assert!(m.latency_ms(0.8, 5.0) > m.latency_ms(0.8, 10.0));
    }

    #[test]
    fn calibration_matches_paper_allocations() {
        let m = QueueingModel::default();
        // At the trace peak with full capacity (10 large instances) the 60 ms
        // Cassandra SLO is met...
        assert!(m.latency_ms(1.0, 10.0) <= 60.0 + 1e-9);
        // ...but not with 9 instances.
        assert!(m.latency_ms(1.0, 9.0) > 60.0);
        // At half load, 5 instances suffice.
        assert!(m.latency_ms(0.5, 5.0) <= 60.0 + 1e-9);
    }

    #[test]
    fn saturation_is_capped() {
        let m = QueueingModel::default();
        let l = m.latency_ms(1.5, 1.0);
        assert!(l <= m.max_latency_ms);
        assert!(l > 100.0);
    }

    #[test]
    fn qos_knee_behaviour() {
        let m = QueueingModel::default();
        assert_eq!(m.qos_at_utilization(0.5), 100.0);
        assert_eq!(m.qos_at_utilization(0.87), 100.0);
        assert!(m.qos_at_utilization(0.95) < 100.0);
        assert!(m.qos_at_utilization(2.0) >= 20.0);
    }

    #[test]
    fn sample_combines_everything() {
        let m = QueueingModel::default();
        let s = m.sample(0.6, 6.0, 1.0);
        assert!((s.utilization - 0.75).abs() < 1e-9);
        assert!(s.latency_ms > m.base_latency_ms);
        assert_eq!(s.qos_percent, 100.0);
        assert!(s.throughput_rps > 0.0);
        // A transient multiplier raises latency but never past the cap.
        let degraded = m.sample(0.6, 6.0, 3.0);
        assert!(degraded.latency_ms > s.latency_ms);
        assert!(degraded.latency_ms <= m.max_latency_ms);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let m = QueueingModel::default();
        let _ = m.utilization(0.5, 0.0);
    }
}
