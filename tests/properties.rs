//! Property-based tests over the core invariants, spanning crates.
//!
//! The properties are exercised with a small hand-rolled harness (`cases`)
//! driven by the workspace's own deterministic [`SimRng`] rather than an
//! external property-testing crate: the build is hermetic, and determinism
//! matters more here than shrinking — every failure reproduces exactly.

use dejavu::cloud::{AllocationSpace, CostMeter, ResourceAllocation};
use dejavu::core::{DejaVuConfig, DejaVuController};
use dejavu::fleet::{
    FleetConfig, FleetEngine, FleetReport, ResolveMemo, ScenarioBuilder, SharedRepoConfig,
    SharedSignatureRepository, SimulationEngine, TransportConfig,
};
use dejavu::metrics::WorkloadSignature;
use dejavu::ml::kmeans::{KMeans, KMeansConfig};
use dejavu::ml::Dataset;
use dejavu::services::service::EvalContext;
use dejavu::services::{CassandraService, ServiceModel};
use dejavu::simcore::{SimDuration, SimRng, SimTime};
use dejavu::traces::LoadTrace;

/// Runs `body` for `n` deterministic random cases, labelling failures with the
/// case index so they can be replayed. `DEJAVU_PROPTEST_CASES` (the
/// `PROPTEST_CASES` equivalent of this hand-rolled harness) overrides the
/// per-property default — the nightly CI job raises it.
fn cases(n: u64, mut body: impl FnMut(&mut SimRng, u64)) {
    let n = std::env::var("DEJAVU_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(n);
    for case in 0..n {
        let mut rng = SimRng::seed_from_u64(P_SEED ^ case);
        body(&mut rng, case);
    }
}

const P_SEED: u64 = 0x5EED_0F20_7E57_CA5E;

/// Signature normalization makes signatures invariant to how long the
/// profiler sampled.
#[test]
fn signature_is_sampling_duration_invariant() {
    cases(64, |rng, case| {
        let len = 1 + rng.uniform_usize(19);
        let values: Vec<f64> = (0..len).map(|_| rng.uniform(0.0, 10_000.0)).collect();
        let short = rng.uniform(1.0, 100.0);
        let factor = rng.uniform(1.1, 50.0);
        let names: Vec<String> = (0..len).map(|i| format!("m{i}")).collect();
        let long_values: Vec<f64> = values.iter().map(|v| v * factor).collect();
        let a = WorkloadSignature::from_raw(names.clone(), values, SimDuration::from_secs(short));
        let b =
            WorkloadSignature::from_raw(names, long_values, SimDuration::from_secs(short * factor));
        let tolerance = 1e-6 * (1.0 + a.values().iter().sum::<f64>().abs());
        assert!(
            a.distance(&b) < tolerance,
            "case {case}: distance {}",
            a.distance(&b)
        );
    });
}

/// The queueing model is monotone: more load never reduces latency, more
/// capacity never increases it.
#[test]
fn latency_is_monotone() {
    let svc = CassandraService::update_heavy();
    let ctx = |cap| EvalContext::steady(SimTime::ZERO, cap);
    cases(64, |rng, case| {
        let load_a = rng.uniform(0.05, 1.2);
        let load_b = rng.uniform(0.05, 1.2);
        let cap_a = rng.uniform(1.0, 12.0);
        let cap_b = rng.uniform(1.0, 12.0);
        let (lo_load, hi_load) = if load_a <= load_b {
            (load_a, load_b)
        } else {
            (load_b, load_a)
        };
        let (lo_cap, hi_cap) = if cap_a <= cap_b {
            (cap_a, cap_b)
        } else {
            (cap_b, cap_a)
        };
        assert!(
            svc.evaluate(hi_load, &ctx(5.0)).latency_ms
                >= svc.evaluate(lo_load, &ctx(5.0)).latency_ms - 1e-9,
            "case {case}: latency not monotone in load"
        );
        assert!(
            svc.evaluate(0.7, &ctx(lo_cap)).latency_ms
                >= svc.evaluate(0.7, &ctx(hi_cap)).latency_ms - 1e-9,
            "case {case}: latency not antitone in capacity"
        );
    });
}

/// Cost metering is additive over adjacent time windows.
#[test]
fn cost_meter_is_additive() {
    cases(64, |rng, case| {
        let n = 1 + rng.uniform_usize(7);
        let counts: Vec<u32> = (0..n).map(|_| 1 + rng.uniform_usize(9) as u32).collect();
        let split = rng.uniform(0.1, 0.9);
        let mut meter = CostMeter::new();
        for (i, &c) in counts.iter().enumerate() {
            meter.record(SimTime::from_hours(i as f64), ResourceAllocation::large(c));
        }
        let end = SimTime::from_hours(counts.len() as f64);
        let mid = SimTime::from_hours(counts.len() as f64 * split);
        let total = meter.cost_between(SimTime::ZERO, end);
        let parts = meter.cost_between(SimTime::ZERO, mid) + meter.cost_between(mid, end);
        assert!(
            (total - parts).abs() < 1e-9,
            "case {case}: {total} != {parts}"
        );
        assert!(total >= 0.0);
    });
}

/// The allocation space's cheapest_with_capacity always returns an allocation
/// that actually provides the requested capacity (or the maximum available).
#[test]
fn cheapest_with_capacity_is_sufficient() {
    let space = AllocationSpace::scale_out(1, 10).unwrap();
    cases(64, |rng, case| {
        let capacity = rng.uniform(0.0, 15.0);
        let chosen = space.cheapest_with_capacity(capacity);
        if capacity <= 10.0 {
            assert!(chosen.capacity_units() >= capacity - 1e-9, "case {case}");
        } else {
            assert_eq!(chosen, space.full_capacity(), "case {case}");
        }
    });
}

/// k-means assignments always point at the nearest centroid.
#[test]
fn kmeans_assignments_are_nearest() {
    cases(24, |rng, case| {
        let n = 8 + rng.uniform_usize(32);
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)))
            .collect();
        let k = (2 + rng.uniform_usize(3)).min(points.len());
        let mut data = Dataset::new(vec!["x".into(), "y".into()]);
        for (x, y) in &points {
            data.push_unlabeled(vec![*x, *y]);
        }
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        for (i, inst) in data.instances().iter().enumerate() {
            let assigned = model.assignments()[i];
            let d_assigned =
                dejavu::ml::dataset::distance(&inst.features, &model.centroids()[assigned]);
            for c in model.centroids() {
                assert!(
                    d_assigned <= dejavu::ml::dataset::distance(&inst.features, c) + 1e-9,
                    "case {case}: point {i} not assigned to nearest centroid"
                );
            }
        }
    });
}

/// Shard routing of the fleet-shared repository is stable: the same namespace
/// always lands in the same in-range shard, across repository instances.
#[test]
fn shared_repo_shard_routing_is_stable() {
    let a = SharedSignatureRepository::new(SharedRepoConfig::default());
    let b = SharedSignatureRepository::new(SharedRepoConfig::default());
    let mut populated = vec![false; a.shard_count()];
    cases(64, |rng, case| {
        for _ in 0..64 {
            let ns = rng.uniform01().to_bits();
            let shard = a.shard_index(ns);
            assert!(shard < a.shard_count(), "case {case}: shard out of range");
            assert_eq!(shard, a.shard_index(ns), "case {case}: routing not stable");
            assert_eq!(
                shard,
                b.shard_index(ns),
                "case {case}: routing differs per instance"
            );
            populated[shard] = true;
        }
    });
    assert!(
        populated.iter().all(|&p| p),
        "4096 random namespaces should touch every one of {} shards",
        a.shard_count()
    );
}

/// Concurrent inserts and lookups from many threads never lose entries: after
/// the threads join, every inserted signature is retrievable and the entry
/// count matches what was inserted.
#[test]
fn shared_repo_concurrent_inserts_lose_nothing() {
    let repo = SharedSignatureRepository::new(SharedRepoConfig {
        shards: 8,
        ..Default::default()
    });
    let threads = 8usize;
    let per_thread = 200usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let repo = &repo;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let ns = (t * per_thread + i) as u64;
                    // Signatures far apart so every insert is its own anchor.
                    let sig = [1000.0 * (i + 1) as f64, 10.0 * (t + 1) as f64];
                    repo.insert(
                        t,
                        ns,
                        &sig,
                        0,
                        ResourceAllocation::large(1 + (i % 9) as u32),
                        SimTime::ZERO,
                    );
                    // Interleave lookups of our own writes while others write.
                    assert!(repo.lookup(t, ns, &sig, 0, SimTime::ZERO).is_some());
                }
            });
        }
    });
    assert_eq!(repo.len(), threads * per_thread, "entries were lost");
    for t in 0..threads {
        for i in 0..per_thread {
            let ns = (t * per_thread + i) as u64;
            let sig = [1000.0 * (i + 1) as f64, 10.0 * (t + 1) as f64];
            let entry = repo
                .lookup(0, ns, &sig, 0, SimTime::ZERO)
                .unwrap_or_else(|| panic!("entry of thread {t} op {i} lost"));
            assert_eq!(
                entry.allocation,
                ResourceAllocation::large(1 + (i % 9) as u32)
            );
        }
    }
}

/// A single-tenant fleet bit-matches a stand-alone `SimulationEngine` run with
/// the same seed: the shared repository degenerates to the tenant's private
/// overlay, the epoch loop to plain sequential stepping.
#[test]
fn single_tenant_fleet_bit_matches_single_controller_run() {
    let scenario = ScenarioBuilder::new("solo", 21, 2)
        .tick(SimDuration::from_secs(300.0))
        .diurnal_fleet(1)
        .build();
    let spec = scenario.tenants[0].clone();

    // Stand-alone run, exactly as the classic experiments drive it.
    let engine = SimulationEngine::new(spec.run_config(scenario.tick));
    let service = CassandraService::update_heavy();
    let mut controller = DejaVuController::new(
        DejaVuConfig::builder()
            .learning_hours(24)
            .seed(spec.seed)
            .build(),
        Box::new(service),
        engine.config().space.clone(),
    );
    let solo = engine.run(&service, &mut controller);

    // The same tenant as a one-member fleet, shared repository enabled.
    let report = FleetEngine::new(scenario, FleetConfig::default()).run();
    let fleet = &report.tenants[0];

    assert_eq!(fleet.dejavu.load.values(), solo.load.values());
    assert_eq!(
        fleet.dejavu.instance_count.values(),
        solo.instance_count.values()
    );
    assert_eq!(fleet.dejavu.latency_ms.values(), solo.latency_ms.values());
    assert_eq!(fleet.dejavu.total_cost, solo.total_cost);
    assert_eq!(fleet.dejavu.reuse_cost, solo.reuse_cost);
    assert_eq!(
        fleet.dejavu.slo_violation_fraction,
        solo.slo_violation_fraction
    );
    assert_eq!(fleet.dejavu.adaptations.len(), solo.adaptations.len());
    assert_eq!(fleet.stats.tunings, controller.stats().tunings);
    assert_eq!(fleet.cross_tenant_hits, 0);
}

/// The indexed anchor resolution of the shared repository returns exactly
/// what a brute-force linear scan over all anchors would: the nearest anchor
/// within tolerance, ties broken toward the lowest anchor id. The reference
/// model below mirrors anchor accretion (a signature farther than the
/// tolerance from every anchor becomes a new anchor) with plain linear
/// scans, while the repository exercises its φ-space ball tree, linear tail
/// and early-exit distance over hundreds of anchors and rebuilds.
#[test]
fn indexed_anchor_resolution_matches_brute_force() {
    use dejavu::fleet::shared_repo::normalized_distance;

    struct RefModel {
        anchors: Vec<Vec<f64>>,
        tolerance: f64,
    }
    impl RefModel {
        fn resolve(&self, sig: &[f64]) -> Option<u32> {
            let mut best: Option<(u32, f64)> = None;
            for (id, anchor) in self.anchors.iter().enumerate() {
                let d = normalized_distance(anchor, sig);
                if d <= self.tolerance && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((id as u32, d));
                }
            }
            best.map(|(id, _)| id)
        }
        fn resolve_or_create(&mut self, sig: &[f64]) -> u32 {
            match self.resolve(sig) {
                Some(id) => id,
                None => {
                    self.anchors.push(sig.to_vec());
                    (self.anchors.len() - 1) as u32
                }
            }
        }
    }

    cases(12, |rng, case| {
        let tolerance = rng.uniform(0.02, 0.5);
        let dims = 1 + rng.uniform_usize(34);
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            match_tolerance: tolerance,
            ..Default::default()
        });
        let mut reference = RefModel {
            anchors: Vec::new(),
            tolerance,
        };
        let namespace = case;
        let sig = |rng: &mut SimRng| -> Vec<f64> {
            (0..dims)
                .map(|_| {
                    // Mixed magnitudes, signs and exact zeros stress the
                    // log-magnitude mapping underneath the index.
                    match rng.uniform_usize(8) {
                        0 => 0.0,
                        1 => -rng.uniform(0.0, 10.0),
                        2 => rng.uniform(0.0, 1e-8),
                        3 => rng.uniform(0.0, 1e6),
                        _ => rng.uniform(0.1, 100.0),
                    }
                })
                .collect()
        };
        let mut bases: Vec<Vec<f64>> = Vec::new();
        for step in 0..400 {
            // Mostly perturbations of earlier signatures (to land near
            // existing anchors and exercise tie-breaking in dense regions),
            // sometimes brand-new points.
            let q: Vec<f64> = if bases.is_empty() || rng.uniform_usize(4) == 0 {
                sig(rng)
            } else {
                let base = &bases[rng.uniform_usize(bases.len())];
                let scale = rng.uniform(0.0, 2.5 * tolerance);
                base.iter()
                    .map(|&v| v * (1.0 + rng.uniform(-scale, scale)))
                    .collect()
            };
            assert_eq!(
                repo.resolve_anchor(namespace, &q),
                reference.resolve(&q),
                "case {case} step {step}: indexed resolve diverged from brute force"
            );
            repo.insert(
                0,
                namespace,
                &q,
                0,
                ResourceAllocation::large(1),
                SimTime::ZERO,
            );
            reference.resolve_or_create(&q);
            assert_eq!(
                repo.anchor_count(),
                reference.anchors.len(),
                "case {case} step {step}: anchor accretion diverged"
            );
            bases.push(q);
        }
    });
}

/// Exact distance ties resolve toward the lowest anchor id through the index,
/// just as the brute-force scan's strict-`<` comparison does.
#[test]
fn anchor_resolution_ties_break_toward_lowest_id() {
    let repo = SharedSignatureRepository::new(SharedRepoConfig {
        match_tolerance: 0.4,
        ..Default::default()
    });
    // Anchors at [2.0] and [4.5]: the query [3.0] is exactly 1/3 away
    // (relative) from both — IEEE division rounds both quotients from the
    // same real value, so the distances are bit-equal.
    repo.insert(0, 1, &[2.0], 0, ResourceAllocation::large(1), SimTime::ZERO);
    repo.insert(7, 1, &[4.5], 0, ResourceAllocation::large(2), SimTime::ZERO);
    assert_eq!(repo.anchor_count(), 2, "anchors must not merge");
    assert_eq!(repo.resolve_anchor(1, &[3.0]), Some(0));
}

/// The read path is genuinely read-only: concurrent lookups and peeks from
/// many threads proceed under the shard read lock, and the relaxed-atomic
/// statistics lose no updates. (Before the read-only read path, every lookup
/// took the shard write lock and serialized all readers.)
#[test]
fn concurrent_lookups_and_peeks_lose_no_statistics() {
    let repo = SharedSignatureRepository::new(SharedRepoConfig::default());
    let sig = [100.0, 5.0, 0.3];
    repo.insert(0, 1, &sig, 0, ResourceAllocation::large(4), SimTime::ZERO);
    let threads = 8;
    let per_thread = 500;
    std::thread::scope(|scope| {
        for t in 1..=threads {
            let repo = &repo;
            let sig = &sig;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let hit = repo
                        .lookup(t, 1, sig, 0, SimTime::ZERO)
                        .expect("entry stays visible under concurrency");
                    assert!(hit.hits > 0);
                    // Peeks interleave with the lookups on the same shard;
                    // they must see the entry and move no statistics.
                    if i % 3 == 0 {
                        assert!(repo.peek(1, sig, 0, SimTime::ZERO, Some(99)).is_some());
                    }
                }
            });
        }
    });
    let stats = repo.stats();
    let expected = (threads * per_thread) as u64;
    assert_eq!(stats.hits, expected, "relaxed counters must not lose hits");
    assert_eq!(stats.cross_tenant_hits, expected);
    assert_eq!(stats.misses, 0);
}

/// Snapshot round-trip: after an arbitrary operation sequence, saving and
/// loading the shared repository yields a repository that behaves **bit
/// identically** — every subsequent resolve/lookup/insert/eviction produces
/// the same results and statistics on both, and after those subsequent
/// operations the two repositories still serialize to byte-identical
/// snapshots.
#[test]
fn shared_repo_snapshot_round_trip_is_bit_identical() {
    use dejavu::fleet::SharedRepoConfig;

    cases(16, |rng, case| {
        let ttl = if rng.uniform01() < 0.5 {
            Some(SimDuration::from_hours(rng.uniform(12.0, 72.0)))
        } else {
            None
        };
        let tolerance = rng.uniform(0.05, 0.3);
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 1 + rng.uniform_usize(16),
            ttl,
            match_tolerance: tolerance,
        });
        let dims = 2 + rng.uniform_usize(6);
        let mut bases: Vec<Vec<f64>> = Vec::new();
        let mut op = |rng: &mut SimRng,
                      repo: &SharedSignatureRepository,
                      probe_twin: Option<&SharedSignatureRepository>| {
            let sig: Vec<f64> = if bases.is_empty() || rng.uniform_usize(3) == 0 {
                (0..dims).map(|_| rng.uniform(0.1, 1e4)).collect()
            } else {
                let base = &bases[rng.uniform_usize(bases.len())];
                let scale = rng.uniform(0.0, 2.0 * tolerance);
                base.iter()
                    .map(|&v| v * (1.0 + rng.uniform(-scale, scale)))
                    .collect()
            };
            bases.push(sig.clone());
            let ns = rng.uniform_usize(5) as u64;
            let bucket = rng.uniform_usize(3) as u32;
            let tenant = rng.uniform_usize(4);
            let now = SimTime::from_hours(rng.uniform(0.0, 96.0));
            match rng.uniform_usize(4) {
                0 => {
                    let alloc = ResourceAllocation::large(1 + rng.uniform_usize(9) as u32);
                    repo.insert(tenant, ns, &sig, bucket, alloc, now);
                    if let Some(twin) = probe_twin {
                        twin.insert(tenant, ns, &sig, bucket, alloc, now);
                    }
                }
                1 => {
                    let got = repo.lookup(tenant, ns, &sig, bucket, now);
                    if let Some(twin) = probe_twin {
                        assert_eq!(got, twin.lookup(tenant, ns, &sig, bucket, now));
                    }
                }
                2 => {
                    let got = repo.peek(ns, &sig, bucket, now, Some(tenant));
                    if let Some(twin) = probe_twin {
                        assert_eq!(got, twin.peek(ns, &sig, bucket, now, Some(tenant)));
                    }
                }
                _ => {
                    let got = repo.resolve_anchor(ns, &sig);
                    if let Some(twin) = probe_twin {
                        assert_eq!(got, twin.resolve_anchor(ns, &sig));
                    }
                }
            }
        };
        for _ in 0..120 {
            op(rng, &repo, None);
        }
        let text = repo.save_snapshot();
        let loaded = SharedSignatureRepository::load_snapshot(&text)
            .unwrap_or_else(|e| panic!("case {case}: snapshot failed to load: {e}"));
        assert_eq!(loaded.save_snapshot(), text, "case {case}: re-save differs");
        assert_eq!(loaded.stats(), repo.stats(), "case {case}");
        assert_eq!(loaded.shard_stats(), repo.shard_stats(), "case {case}");
        // All subsequent operations behave identically on both repositories…
        for _ in 0..80 {
            op(rng, &repo, Some(&loaded));
        }
        let sweep_at = SimTime::from_hours(rng.uniform(0.0, 120.0));
        assert_eq!(
            repo.evict_stale(sweep_at),
            loaded.evict_stale(sweep_at),
            "case {case}: TTL sweeps diverged"
        );
        assert_eq!(loaded.stats(), repo.stats(), "case {case}: stats diverged");
        // …and the evolved repositories still serialize identically.
        assert_eq!(
            loaded.save_snapshot(),
            repo.save_snapshot(),
            "case {case}: snapshots diverged after subsequent ops"
        );
    });
}

/// Snapshot **error paths** return the right typed error on arbitrary
/// repositories — not just the hand-written samples in `snapshot.rs`'s unit
/// tests. For every randomly built repository the property corrupts the
/// serialized text four ways and checks the decoder's verdict:
///
/// * **Truncation** (dropping a random number of trailing lines, losing the
///   `end` terminator) → `SnapshotError::Inconsistent` naming truncation;
/// * **A wrong version line** → `SnapshotError::Version` carrying what was
///   found;
/// * **A shard-bound violation** (`config shards=` beyond `MAX_SHARDS`) →
///   `SnapshotError::Inconsistent` naming the shard count;
/// * **A corrupted IEEE hex float** (a random `fb…` token mangled) →
///   `SnapshotError::Format` pointing at the exact line.
#[test]
fn snapshot_error_paths_return_typed_errors() {
    use dejavu::fleet::snapshot::{decode, SnapshotError, MAX_SHARDS};

    cases(16, |rng, case| {
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 1 + rng.uniform_usize(8),
            ttl: (rng.uniform01() < 0.5).then(|| SimDuration::from_hours(24.0)),
            match_tolerance: 0.1,
        });
        let n = 1 + rng.uniform_usize(20);
        for i in 0..n {
            let sig = vec![1000.0 * 1.5f64.powi(i as i32), rng.uniform(0.1, 1e4)];
            repo.insert(
                i % 3,
                rng.uniform_usize(4) as u64,
                &sig,
                (i % 2) as u32,
                ResourceAllocation::large(1 + (i % 9) as u32),
                SimTime::from_hours(rng.uniform(0.0, 48.0)),
            );
        }
        let text = repo.save_snapshot();
        let lines: Vec<&str> = text.lines().collect();

        // Truncation: drop 1..n trailing lines (always at least the `end`
        // terminator), keeping the version and config lines intact.
        let keep = 2 + rng.uniform_usize(lines.len() - 2);
        let truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        match decode(&truncated) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("truncated"), "case {case}: {message}");
            }
            other => panic!("case {case}: truncation decoded to {other:?}"),
        }

        // Wrong version line: the error carries what was actually found.
        let mangled_version = format!(
            "dejavu-fleet-snapshot v999\n{}",
            &text[lines[0].len() + 1..]
        );
        match decode(&mangled_version) {
            Err(SnapshotError::Version { found }) => {
                assert_eq!(found, "dejavu-fleet-snapshot v999", "case {case}");
            }
            other => panic!("case {case}: version mismatch decoded to {other:?}"),
        }

        // Shard-bound violation: a huge `config shards=` is rejected before
        // any allocation, as an inconsistency naming the count.
        let bound = MAX_SHARDS + 1 + rng.uniform_usize(1000);
        let shard_bomb = text.replacen(
            &format!("config shards={}", repo.shard_count()),
            &format!("config shards={bound}"),
            1,
        );
        match decode(&shard_bomb) {
            Err(SnapshotError::Inconsistent { message }) => {
                assert!(message.contains("shard count"), "case {case}: {message}");
            }
            other => panic!("case {case}: shard bomb decoded to {other:?}"),
        }

        // Corrupted IEEE hex float: pick a random data line holding an
        // `fb<16 hex>` token and mangle the token; the error is a Format
        // error pointing at exactly that line.
        let float_lines: Vec<usize> = lines
            .iter()
            .enumerate()
            .skip(2) // leave the config line to the dedicated checks above
            .filter(|(_, l)| l.split_whitespace().any(|tok| tok.starts_with("fb")))
            .map(|(i, _)| i)
            .collect();
        if let Some(&line_idx) = float_lines.get(rng.uniform_usize(float_lines.len().max(1))) {
            let victim = lines[line_idx];
            let token = victim
                .split_whitespace()
                .find(|tok| tok.starts_with("fb") && tok.len() == 18)
                .expect("a float token on the chosen line");
            let corrupted_line = match rng.uniform_usize(3) {
                0 => victim.replacen(token, "fbZZ", 1), // bad length + bad hex
                1 => victim.replacen(token, &token[..17], 1), // 15 hex digits
                _ => victim.replacen(token, &format!("fbx{}", &token[3..]), 1), // non-hex
            };
            let corrupted: String = lines
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    if i == line_idx {
                        format!("{corrupted_line}\n")
                    } else {
                        format!("{l}\n")
                    }
                })
                .collect();
            match decode(&corrupted) {
                Err(SnapshotError::Format { line, message }) => {
                    assert_eq!(line, line_idx + 1, "case {case}: wrong line in {message}");
                    assert!(
                        message.contains("fb<16 hex digits>"),
                        "case {case}: {message}"
                    );
                }
                other => panic!("case {case}: corrupted float decoded to {other:?}"),
            }
        }

        // The untouched text still decodes — the corruptions above, not some
        // latent strictness, produced the errors.
        assert!(decode(&text).is_ok(), "case {case}");
    });
}

/// Elastic-tenancy determinism: a scenario with staggered joins and mid-run
/// departures is bit-identical across 1, 2 and 8 worker threads.
#[test]
fn churn_scenarios_are_deterministic_across_worker_counts() {
    let scenario = || {
        ScenarioBuilder::new("churn-prop", 17, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(5)
            .stagger_arrivals(
                3,
                SimDuration::from_hours(5.0),
                SimDuration::from_hours(2.0),
            )
            .depart_at(1, SimDuration::from_hours(13.0))
            .build()
    };
    let run = |workers| {
        FleetEngine::new(
            scenario(),
            FleetConfig {
                workers,
                ..Default::default()
            },
        )
        .run()
    };
    let one = run(1);
    for workers in [2, 8] {
        let other = run(workers);
        assert_eq!(one.epochs, other.epochs);
        assert_eq!(
            one.hit_rate_curve, other.hit_rate_curve,
            "{workers} workers"
        );
        for (a, b) in one.tenants.iter().zip(&other.tenants) {
            assert_eq!(a.joined_epoch, b.joined_epoch, "{workers} workers");
            assert_eq!(a.active_epochs, b.active_epochs, "{workers} workers");
            assert_eq!(
                a.first_fleet_reuse_epoch, b.first_fleet_reuse_epoch,
                "{workers} workers"
            );
            assert_eq!(
                a.dejavu.total_cost, b.dejavu.total_cost,
                "{workers} workers"
            );
            assert_eq!(a.dejavu.latency_ms.values(), b.dejavu.latency_ms.values());
            assert_eq!(a.stats.tunings, b.stats.tunings);
            assert_eq!(a.cross_tenant_hits, b.cross_tenant_hits);
        }
    }
}

/// A tenant that joins a fleet whose other members have already retired
/// behaves bit-identically to a fresh tenant running alone against a
/// repository warm-started from a snapshot of that fleet: admission is
/// epoch-barrier-aligned and tenant clocks are local, so the late joiner sees
/// exactly the snapshot state.
#[test]
fn rejoining_tenant_matches_fresh_tenant_warm_started_from_snapshot() {
    use std::sync::Arc;

    for seed in [21u64, 33] {
        // Fleet F: tenants 0–2 run day one (tenant 0 departs early at 12 h);
        // tenant 3 "rejoins" at hour 24, once everyone else is gone.
        let full = ScenarioBuilder::new("rejoin", seed, 1)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .depart_at(0, SimDuration::from_hours(12.0))
            .arrive_at(3, SimDuration::from_hours(24.0))
            .build();
        let full_report = FleetEngine::new(full.clone(), FleetConfig::default()).run();

        // Prefix fleet G: the same first day without tenant 3; snapshot it.
        let mut prefix = ScenarioBuilder::new("rejoin", seed, 1)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .depart_at(0, SimDuration::from_hours(12.0))
            .build();
        prefix.tenants.truncate(3);
        let engine = FleetEngine::new(prefix, FleetConfig::default());
        let repo = Arc::new(SharedSignatureRepository::new(SharedRepoConfig::default()));
        engine.run_on(Arc::clone(&repo));
        let snapshot = repo.save_snapshot();

        // Warm fleet H: tenant 3 alone (same spec, immediate start) against
        // the loaded snapshot.
        let mut solo = full.clone();
        solo.tenants = vec![{
            let mut spec = full.tenants[3].clone();
            spec.start = SimDuration::from_secs(0.0);
            spec
        }];
        let (warm_report, _) = FleetEngine::new(solo, FleetConfig::default())
            .run_warm(&snapshot)
            .expect("snapshot loads");

        let rejoined = &full_report.tenants[3];
        let fresh = &warm_report.tenants[0];
        assert_eq!(
            rejoined.dejavu.total_cost, fresh.dejavu.total_cost,
            "seed {seed}"
        );
        assert_eq!(
            rejoined.dejavu.latency_ms.values(),
            fresh.dejavu.latency_ms.values(),
            "seed {seed}"
        );
        assert_eq!(
            rejoined.dejavu.instance_count.values(),
            fresh.dejavu.instance_count.values(),
            "seed {seed}"
        );
        assert_eq!(rejoined.stats.tunings, fresh.stats.tunings, "seed {seed}");
        assert_eq!(
            rejoined.stats.fleet_reuses, fresh.stats.fleet_reuses,
            "seed {seed}"
        );
        assert_eq!(
            rejoined.first_fleet_reuse_epoch, fresh.first_fleet_reuse_epoch,
            "seed {seed}"
        );
        assert_eq!(
            rejoined.cross_tenant_hits, fresh.cross_tenant_hits,
            "seed {seed}"
        );
    }
}

/// The TTL sweep reclaims exactly the entries that lookups and peeks deferred
/// as stale (the PR 2 read-only read path defers eviction to the sweep), and
/// every counter stays consistent: misses accrue at lookup time, evictions
/// only at sweep time.
#[test]
fn ttl_sweep_reclaims_deferred_stale_entries_with_consistent_counters() {
    use dejavu::fleet::SharedRepoConfig;

    cases(32, |rng, case| {
        let ttl_hours = rng.uniform(6.0, 48.0);
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 1 + rng.uniform_usize(8),
            ttl: Some(SimDuration::from_hours(ttl_hours)),
            ..Default::default()
        });
        let n = 1 + rng.uniform_usize(40);
        let mut tuned: Vec<(u64, Vec<f64>, SimTime)> = Vec::new();
        for i in 0..n {
            // One namespace per entry keeps the reference model trivial.
            let sig = vec![100.0 + i as f64, 55.0];
            let at = SimTime::from_hours(rng.uniform(0.0, 72.0));
            repo.insert(0, i as u64, &sig, 0, ResourceAllocation::large(2), at);
            tuned.push((i as u64, sig, at));
        }
        let now = SimTime::from_hours(rng.uniform(0.0, 120.0));
        let stale = |at: SimTime| now.saturating_since(at).as_secs() > ttl_hours * 3600.0;
        let expected_stale = tuned.iter().filter(|(_, _, at)| stale(*at)).count() as u64;

        // Lookups and peeks defer staleness: they miss but evict nothing.
        for (ns, sig, at) in &tuned {
            let hit = repo.lookup(1, *ns, sig, 0, now);
            assert_eq!(hit.is_none(), stale(*at), "case {case} ns {ns}");
            assert_eq!(
                repo.peek(*ns, sig, 0, now, None).is_none(),
                stale(*at),
                "case {case} ns {ns}"
            );
        }
        assert_eq!(repo.len(), n, "case {case}: lookups must not evict");
        let stats = repo.stats();
        assert_eq!(stats.misses, expected_stale, "case {case}");
        assert_eq!(stats.hits, n as u64 - expected_stale, "case {case}");
        assert_eq!(stats.evictions, 0, "case {case}");

        // The sweep reclaims exactly the deferred entries.
        assert_eq!(repo.evict_stale(now), expected_stale, "case {case}");
        assert_eq!(repo.len(), n - expected_stale as usize, "case {case}");
        let stats = repo.stats();
        assert_eq!(stats.evictions, expected_stale, "case {case}");
        assert_eq!(
            stats.misses, expected_stale,
            "case {case}: the sweep must not count misses"
        );
        // Evicted entries are really gone; fresh ones still hit.
        for (ns, sig, at) in &tuned {
            assert_eq!(
                repo.lookup(1, *ns, sig, 0, now).is_none(),
                stale(*at),
                "case {case} ns {ns} after sweep"
            );
        }
        // A second sweep at the same time is a no-op.
        assert_eq!(repo.evict_stale(now), 0, "case {case}");
    });
}

/// Asserts that two fleet reports describe bit-identical runs: every
/// per-tenant result, the convergence bookkeeping and the hit-rate curve.
fn assert_reports_bit_match(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(a.epochs, b.epochs, "{label}: epochs");
    assert_eq!(a.hit_rate_curve, b.hit_rate_curve, "{label}: curve");
    assert_eq!(a.tenants.len(), b.tenants.len(), "{label}: tenant count");
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        let t = &x.name;
        assert_eq!(x.dejavu.total_cost, y.dejavu.total_cost, "{label} {t}");
        assert_eq!(x.dejavu.reuse_cost, y.dejavu.reuse_cost, "{label} {t}");
        assert_eq!(
            x.dejavu.slo_violation_fraction, y.dejavu.slo_violation_fraction,
            "{label} {t}"
        );
        assert_eq!(
            x.dejavu.latency_ms.values(),
            y.dejavu.latency_ms.values(),
            "{label} {t}"
        );
        assert_eq!(
            x.dejavu.instance_count.values(),
            y.dejavu.instance_count.values(),
            "{label} {t}"
        );
        assert_eq!(x.stats.tunings, y.stats.tunings, "{label} {t}");
        assert_eq!(x.stats.fleet_reuses, y.stats.fleet_reuses, "{label} {t}");
        assert_eq!(
            x.stats.repository.hits, y.stats.repository.hits,
            "{label} {t}"
        );
        assert_eq!(
            x.stats.repository.misses, y.stats.repository.misses,
            "{label} {t}"
        );
        assert_eq!(x.cross_tenant_hits, y.cross_tenant_hits, "{label} {t}");
        assert_eq!(x.joined_epoch, y.joined_epoch, "{label} {t}");
        assert_eq!(x.active_epochs, y.active_epochs, "{label} {t}");
        assert_eq!(
            x.first_fleet_reuse_epoch, y.first_fleet_reuse_epoch,
            "{label} {t}"
        );
    }
    let (ra, rb) = (a.shared_repo.as_ref(), b.shared_repo.as_ref());
    assert_eq!(ra.is_some(), rb.is_some(), "{label}: repo snapshot");
    if let (Some(ra), Some(rb)) = (ra, rb) {
        assert_eq!(ra.entries, rb.entries, "{label}: repo entries");
        assert_eq!(ra.anchors, rb.anchors, "{label}: repo anchors");
        assert_eq!(ra.stats, rb.stats, "{label}: repo stats");
        assert_eq!(ra.shard_stats, rb.shard_stats, "{label}: shard stats");
    }
}

/// The churn scenario both transport properties run: staggered joiners, a
/// mid-run departure, mixed service families.
fn transport_scenario(seed: u64) -> dejavu::fleet::Scenario {
    ScenarioBuilder::new("transport-prop", seed, 2)
        .tick(SimDuration::from_secs(600.0))
        .diurnal_fleet(4)
        .sine_sweep(2)
        .stagger_arrivals(
            4,
            SimDuration::from_hours(6.0),
            SimDuration::from_hours(4.0),
        )
        .depart_at(1, SimDuration::from_hours(20.0))
        .build()
}

/// `BoundedStaleness(0)` bit-matches the BSP barrier: with a zero bound no
/// tenant may enter an epoch before every prior epoch is fully committed, so
/// the store is frozen whenever anyone reads it — exactly the barrier's
/// schedule, modulo which threads execute it.
#[test]
fn bounded_staleness_zero_bit_matches_the_bsp_barrier() {
    for seed in [13u64, 29] {
        let run = |transport| {
            FleetEngine::new(
                transport_scenario(seed),
                FleetConfig {
                    transport,
                    ..Default::default()
                },
            )
            .run()
        };
        let bsp = run(TransportConfig::Bsp);
        let async0 = run(TransportConfig::BoundedStaleness { staleness: 0 });
        assert_reports_bit_match(&bsp, &async0, &format!("seed {seed}"));
        // The zero-bound schedule also never observed a stale view.
        assert_eq!(async0.transport.view_staleness.max(), 0, "seed {seed}");
        assert_eq!(
            async0.transport.view_staleness.total(),
            bsp.transport.view_staleness.total(),
            "seed {seed}"
        );
    }
}

/// `BoundedStaleness(K)` never serves a view staler than `K` epochs: the
/// observed-staleness histogram (one observation per tenant-epoch, recorded
/// when the tenant enters the epoch) never exceeds the bound, and neither
/// does the staleness of any view that produced a committed reuse.
#[test]
fn bounded_staleness_never_exceeds_its_bound() {
    for k in [0usize, 1, 3] {
        let report = FleetEngine::new(
            transport_scenario(13),
            FleetConfig {
                transport: TransportConfig::BoundedStaleness { staleness: k },
                ..Default::default()
            },
        )
        .run();
        assert!(
            report.transport.view_staleness.max() <= k,
            "k = {k}: view staleness {} exceeded the bound",
            report.transport.view_staleness.max()
        );
        assert!(
            report.transport.reuse_staleness.max() <= k,
            "k = {k}: reuse staleness {} exceeded the bound",
            report.transport.reuse_staleness.max()
        );
        // One observation per tenant-epoch actually stepped: every tenant
        // covers its whole window (tenant 1 departs at hour 20).
        let expected: u64 = report.tenants.iter().map(|t| t.active_epochs as u64).sum();
        assert_eq!(report.transport.view_staleness.total(), expected, "k = {k}");
        // The run still produces a working fleet.
        assert!(report.total_fleet_reuses() > 0, "k = {k}");
        assert_eq!(report.hit_rate_curve.len(), report.epochs, "k = {k}");
    }
}

/// The BSP backend's fleet output is pinned to the pre-transport engine
/// (PR 3): these constants were produced by the epoch-barrier loop before
/// the commit path moved into `dejavu_fleet::transport`, so any behavioural
/// drift in the refactored barrier — stepping, commit order, sweep timing,
/// bookkeeping — fails this test. The integer bookkeeping (tunings, reuses,
/// hits, windows, repository stats) is pinned everywhere; the exact f64 bit
/// patterns flow through platform-`libm` transcendentals (`sin`/`ln`/`exp`
/// in the trace, RNG and service models) and so are pinned only on the
/// platform that recorded them — elsewhere a last-ulp `libm` difference
/// would fail them without any behavioural change.
#[test]
fn bsp_fleet_output_is_byte_identical_to_the_pre_transport_engine() {
    let report = FleetEngine::new(
        ScenarioBuilder::new("golden", 13, 2)
            .tick(SimDuration::from_secs(600.0))
            .diurnal_fleet(4)
            .sine_sweep(2)
            .stagger_arrivals(
                4,
                SimDuration::from_hours(6.0),
                SimDuration::from_hours(4.0),
            )
            .depart_at(1, SimDuration::from_hours(20.0))
            .build(),
        FleetConfig::default(),
    )
    .run();
    assert_eq!(report.epochs, 58);
    struct GoldenTenant {
        cost_bits: u64,
        slo_bits: u64,
        tunings: usize,
        reuses: u64,
        hits: u64,
        misses: u64,
        cross: u64,
        first_reuse: Option<usize>,
        joined: usize,
        active: usize,
    }
    #[rustfmt::skip]
    let golden = [
        GoldenTenant { cost_bits: 0x4054bd32beb109c9, slo_bits: 0x3fa8e38e38e38e39, tunings: 16, reuses: 8, hits: 31, misses: 16, cross: 8, first_reuse: Some(3), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x405fb7d5acb6f467, slo_bits: 0x3fbc71c71c71c71c, tunings: 13, reuses: 7, hits: 7, misses: 13, cross: 7, first_reuse: Some(6), joined: 0, active: 20 },
        GoldenTenant { cost_bits: 0x4054a54adda39cca, slo_bits: 0x3fa71c71c71c71c7, tunings: 20, reuses: 4, hits: 27, misses: 20, cross: 4, first_reuse: Some(3), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x40587597530eca87, slo_bits: 0x3fb471c71c71c71c, tunings: 14, reuses: 10, hits: 34, misses: 14, cross: 10, first_reuse: Some(8), joined: 0, active: 48 },
        GoldenTenant { cost_bits: 0x405a8119b6ba23f6, slo_bits: 0x3fa0000000000000, tunings: 23, reuses: 1, hits: 7, misses: 23, cross: 1, first_reuse: Some(14), joined: 6, active: 48 },
        GoldenTenant { cost_bits: 0x405cbf0cf87d9c56, slo_bits: 0x3fb0e38e38e38e39, tunings: 28, reuses: 2, hits: 16, misses: 22, cross: 2, first_reuse: Some(10), joined: 10, active: 48 },
    ];
    // The bit-exact pins: recorded on x86_64 Linux (the CI platform).
    let pin_bits = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    for (t, g) in report.tenants.iter().zip(&golden) {
        if pin_bits {
            assert_eq!(
                t.dejavu.total_cost.to_bits(),
                g.cost_bits,
                "{} cost",
                t.name
            );
            assert_eq!(
                t.dejavu.slo_violation_fraction.to_bits(),
                g.slo_bits,
                "{} slo",
                t.name
            );
        }
        assert_eq!(t.stats.tunings, g.tunings, "{} tunings", t.name);
        assert_eq!(t.stats.fleet_reuses, g.reuses, "{} reuses", t.name);
        assert_eq!(t.stats.repository.hits, g.hits, "{} hits", t.name);
        assert_eq!(t.stats.repository.misses, g.misses, "{} misses", t.name);
        assert_eq!(t.cross_tenant_hits, g.cross, "{} cross", t.name);
        assert_eq!(t.first_fleet_reuse_epoch, g.first_reuse, "{} first", t.name);
        assert_eq!(t.joined_epoch, g.joined, "{} joined", t.name);
        assert_eq!(t.active_epochs, g.active, "{} active", t.name);
    }
    if pin_bits {
        let curve_xor = report
            .hit_rate_curve
            .iter()
            .fold(0u64, |acc, v| acc ^ v.to_bits().rotate_left(17));
        assert_eq!(curve_xor, 0x6e803bd257300001, "hit-rate curve drifted");
    }
    let repo = report.shared_repo.as_ref().expect("shared snapshot");
    assert_eq!((repo.entries, repo.anchors), (55, 55));
    assert_eq!(repo.stats.hits, 32);
    assert_eq!(repo.stats.misses, 108);
    assert_eq!(repo.stats.insertions, 132);
    assert_eq!(repo.stats.cross_tenant_hits, 32);
}

/// The memoized peek path serves bit-identical answers — entries *and*
/// resolution witnesses — to the uncached path, across anchor accretion:
/// a memo recorded against `n` anchors is revalidated against only the
/// anchors created since, which must never change the outcome.
#[test]
fn memoized_peek_resolution_matches_uncached_peeks() {
    cases(12, |rng, case| {
        let tolerance = rng.uniform(0.05, 0.4);
        let ttl = if rng.uniform01() < 0.5 {
            Some(SimDuration::from_hours(rng.uniform(12.0, 72.0)))
        } else {
            None
        };
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 1 + rng.uniform_usize(8),
            ttl,
            match_tolerance: tolerance,
        });
        let namespace = case;
        let dims = 2 + rng.uniform_usize(10);
        let mut memo = ResolveMemo::default();
        // A small recurring pool plays the role of class medoids: the same
        // signatures are peeked over and over while anchors accrete.
        let mut pool: Vec<Vec<f64>> = Vec::new();
        for step in 0..300 {
            let sig: Vec<f64> = if pool.is_empty() || rng.uniform_usize(3) == 0 {
                let fresh: Vec<f64> = (0..dims).map(|_| rng.uniform(0.1, 1e4)).collect();
                pool.push(fresh.clone());
                fresh
            } else {
                pool[rng.uniform_usize(pool.len())].clone()
            };
            let bucket = rng.uniform_usize(3) as u32;
            let tenant = rng.uniform_usize(4);
            let now = SimTime::from_hours(rng.uniform(0.0, 96.0));
            let exclude = if rng.uniform01() < 0.5 {
                Some(tenant)
            } else {
                None
            };
            let cached =
                repo.peek_resolved_cached(namespace, &sig, bucket, now, exclude, &mut memo);
            let plain = repo.peek_resolved(namespace, &sig, bucket, now, exclude);
            assert_eq!(
                cached, plain,
                "case {case} step {step}: memoized peek diverged"
            );
            // Keep anchors accreting underneath the memo.
            if rng.uniform_usize(2) == 0 {
                let publish: Vec<f64> = if rng.uniform01() < 0.5 {
                    sig.iter()
                        .map(|&v| v * (1.0 + rng.uniform(-2.0 * tolerance, 2.0 * tolerance)))
                        .collect()
                } else {
                    (0..dims).map(|_| rng.uniform(0.1, 1e4)).collect()
                };
                repo.insert(
                    tenant,
                    namespace,
                    &publish,
                    bucket,
                    ResourceAllocation::large(1 + rng.uniform_usize(9) as u32),
                    now,
                );
            }
        }
        assert!(!memo.is_empty(), "case {case}: the memo never filled");
    });
}

/// Compacted snapshots drop exactly the never-hit entries, keep every anchor
/// (resolution is untouched), and the loaded repository equals what a
/// straight save of the compacted state would produce.
#[test]
fn compacted_snapshots_drop_only_never_hit_entries() {
    cases(16, |rng, case| {
        let repo = SharedSignatureRepository::new(SharedRepoConfig {
            shards: 1 + rng.uniform_usize(8),
            ..Default::default()
        });
        let n = 5 + rng.uniform_usize(30);
        let mut inserted: Vec<(u64, Vec<f64>, bool)> = Vec::new();
        for i in 0..n {
            let ns = rng.uniform_usize(4) as u64;
            // Exponentially spaced signatures: consecutive magnitudes differ
            // by 50%, far beyond the match tolerance, so every insert is its
            // own anchor × entry.
            let sig = vec![1000.0 * 1.5f64.powi(i as i32), 55.0 + ns as f64];
            repo.insert(
                0,
                ns,
                &sig,
                0,
                ResourceAllocation::large(1 + (i % 9) as u32),
                SimTime::ZERO,
            );
            let hit = rng.uniform01() < 0.5;
            if hit {
                assert!(repo.lookup(1, ns, &sig, 0, SimTime::ZERO).is_some());
            }
            inserted.push((ns, sig, hit));
        }
        let hit_count = inserted.iter().filter(|(_, _, hit)| *hit).count();
        let compacted = repo.save_snapshot_compact();
        let loaded = SharedSignatureRepository::load_snapshot(&compacted)
            .unwrap_or_else(|e| panic!("case {case}: compacted snapshot failed to load: {e}"));
        assert_eq!(loaded.len(), hit_count, "case {case}: wrong entries kept");
        assert_eq!(
            loaded.anchor_count(),
            repo.anchor_count(),
            "case {case}: compaction must keep anchors"
        );
        assert_eq!(loaded.stats(), repo.stats(), "case {case}: stats drifted");
        for (ns, sig, hit) in &inserted {
            assert_eq!(
                loaded.resolve_anchor(*ns, sig),
                repo.resolve_anchor(*ns, sig),
                "case {case}: resolution drifted"
            );
            assert_eq!(
                loaded.peek(*ns, sig, 0, SimTime::ZERO, None).is_some(),
                *hit,
                "case {case}: entry survival mismatched its hit state"
            );
        }
        // A loaded compacted repository re-saves to the same bytes: every
        // surviving entry has hits, so compaction is idempotent.
        assert_eq!(loaded.save_snapshot(), compacted, "case {case}");
        assert_eq!(loaded.save_snapshot_compact(), compacted, "case {case}");
    });
}

/// Load traces never produce levels outside the valid range, under any
/// rescaling.
#[test]
fn trace_rescaling_stays_in_range() {
    cases(64, |rng, case| {
        let n = 1 + rng.uniform_usize(47);
        let levels: Vec<f64> = (0..n).map(|_| rng.uniform01()).collect();
        let new_peak = rng.uniform(0.05, 1.5);
        let trace = LoadTrace::hourly("prop", levels).unwrap();
        let rescaled = trace.rescaled_to_peak(new_peak);
        assert!(
            rescaled.levels().iter().all(|&l| (0.0..=1.5).contains(&l)),
            "case {case}: level out of range"
        );
        assert!((rescaled.peak() - new_peak).abs() < 1e-9, "case {case}");
    });
}

/// The chunked (lane-parallel) distance kernels agree with the exact-order
/// serial kernels to 1e-9 relative error on every length — including the
/// remainder shapes `len % LANES ∈ {0, 1, LANES - 1}` that exercise the
/// scalar tail — and the early-exit variants agree on *whether* a bound is
/// exceeded whenever the margin is clear.
#[test]
fn chunked_kernels_agree_with_exact_order_within_1e9_relative() {
    use dejavu::ml::kernels;

    let rel_close = |a: f64, b: f64| {
        let scale = a.abs().max(b.abs()).max(1e-300);
        (a - b).abs() / scale <= 1e-9
    };
    cases(24, |rng, case| {
        // Lengths straddling the block/lane boundaries: multiples of LANES,
        // one past, and one short (len % LANES ∈ {0, 1, LANES - 1}).
        for base in [0usize, kernels::LANES, kernels::BLOCK, 3 * kernels::BLOCK] {
            for len in [base, base + 1, (base + kernels::LANES) - 1] {
                let mut a = Vec::with_capacity(len);
                let mut b = Vec::with_capacity(len);
                for _ in 0..len {
                    let mag = 10f64.powi(rng.uniform_usize(7) as i32 - 3);
                    let x = rng.uniform(-1.0, 1.0) * mag;
                    a.push(x);
                    b.push(x + rng.uniform(-0.5, 0.5) * mag);
                }
                let label = format!("case {case} len {len}");

                let exact = kernels::squared_distance_exact(&a, &b);
                let chunked = kernels::squared_distance_chunked(&a, &b);
                assert!(rel_close(exact, chunked), "{label}: {exact} vs {chunked}");

                // Early-exit variants: with a bound clearly above the true
                // sum both must return it; clearly below (and a nonempty
                // vector, so the bound check actually runs), both must bail.
                let mut bounds = vec![(exact * 2.0 + 1.0, true)];
                if exact > 2.0 {
                    bounds.push((exact * 0.5 - 1.0, false));
                }
                for (bound, expect_some) in bounds {
                    let we = kernels::squared_distance_within_exact(&a, &b, bound);
                    let wc = kernels::squared_distance_within_chunked(&a, &b, bound);
                    assert_eq!(we.is_some(), expect_some, "{label} bound {bound}");
                    assert_eq!(wc.is_some(), expect_some, "{label} bound {bound}");
                    if let (Some(ve), Some(vc)) = (we, wc) {
                        assert!(rel_close(ve, vc), "{label}: {ve} vs {vc}");
                    }
                }

                let floor = 1e-9;
                let ne = kernels::normalized_sq_sum_exact(&a, &b, floor, f64::INFINITY)
                    .expect("infinite bound");
                let nc = kernels::normalized_sq_sum_chunked(&a, &b, floor, f64::INFINITY)
                    .expect("infinite bound");
                assert!(rel_close(ne, nc), "{label}: {ne} vs {nc}");
                let below = kernels::normalized_sq_sum_chunked(&a, &b, floor, ne * 0.5 - 1.0);
                if len > 0 && ne > 2.0 {
                    assert!(below.is_none(), "{label}: chunked ignored the bound");
                }
            }
        }
    });
}
