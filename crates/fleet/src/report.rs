//! Aggregated results of a fleet run.

use crate::engine::RunResult;
use crate::fleet_engine::SharingMode;
use crate::shared_repo::{ShardStats, TenantId};
use crate::transport::{FaultSummary, TransportSummary};
use dejavu_core::DejaVuStats;

/// Snapshot of the shared repository at the end of a run.
#[derive(Debug, Clone)]
pub struct SharedRepoSnapshot {
    /// Entries held at the end of the run (post-eviction).
    pub entries: usize,
    /// Distinct workload-class anchors.
    pub anchors: usize,
    /// Aggregate statistics.
    pub stats: ShardStats,
    /// Per-shard statistics (lock-stripe balance).
    pub shard_stats: Vec<ShardStats>,
}

/// Everything recorded for one tenant.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Fleet-wide tenant id.
    pub id: TenantId,
    /// Tenant label.
    pub name: String,
    /// The namespace the tenant shared entries under.
    pub namespace: u64,
    /// The tenant's DejaVu run.
    pub dejavu: RunResult,
    /// The tenant controller's statistics (tunings, hits, repository stats).
    pub stats: DejaVuStats,
    /// Lookups this tenant served from other tenants' tuning decisions.
    pub cross_tenant_hits: u64,
    /// Global epoch at whose barrier the tenant was admitted (0 = fleet
    /// start; elastic tenants join later).
    pub joined_epoch: usize,
    /// Epochs the tenant was actually simulated for (fewer than the fleet
    /// total for late joiners and early leavers).
    pub active_epochs: usize,
    /// Epochs after joining until the tenant's first `FleetReuse` decision
    /// (1-based), if it ever reused a fleet entry. This is the newcomer
    /// convergence metric: warm-started fleets reach it in fewer epochs.
    pub first_fleet_reuse_epoch: Option<usize>,
    /// Global epoch at which the tenant panicked and was retired by the
    /// transport (the rest of the fleet finished without it). `None` for a
    /// healthy tenant.
    pub failed_epoch: Option<usize>,
    /// The always-full-capacity baseline, when baselines were enabled.
    pub fixed_max: Option<RunResult>,
    /// The RightScale-style baseline, when baselines were enabled.
    pub rightscale: Option<RunResult>,
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Scenario label.
    pub scenario: String,
    /// Whether the repository was shared.
    pub sharing: SharingMode,
    /// Number of epochs simulated.
    pub epochs: usize,
    /// Whether the run started from a non-empty (snapshot-loaded) repository.
    pub warm_start: bool,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Shared-repository snapshot (None for isolated runs).
    pub shared_repo: Option<SharedRepoSnapshot>,
    /// Fleet-wide cumulative repository hit rate after each epoch barrier —
    /// the convergence curve warm starts bend upward.
    pub hit_rate_curve: Vec<f64>,
    /// Which commit transport drove the run, plus its observed-staleness and
    /// reuse-latency telemetry (all-zero histograms under the BSP barrier).
    pub transport: TransportSummary,
    /// Fault-injection and recovery tallies, when the run injected faults or
    /// profiled checkpointing; `None` for ordinary runs.
    pub faults: Option<FaultSummary>,
}

impl FleetReport {
    /// Mean SLO-violation fraction across tenants.
    pub fn aggregate_slo_violation(&self) -> f64 {
        if self.tenants.is_empty() {
            return 0.0;
        }
        self.tenants
            .iter()
            .map(|t| t.dejavu.slo_violation_fraction)
            .sum::<f64>()
            / self.tenants.len() as f64
    }

    /// Total DejaVu deployment cost over the fleet (USD).
    pub fn total_cost(&self) -> f64 {
        self.tenants.iter().map(|t| t.dejavu.total_cost).sum()
    }

    /// Total cost had every tenant provisioned at full capacity, when the
    /// baselines were run.
    pub fn total_fixed_max_cost(&self) -> Option<f64> {
        self.tenants
            .iter()
            .map(|t| t.fixed_max.as_ref().map(|r| r.total_cost))
            .sum()
    }

    /// Total cost under the RightScale-style baseline, when run.
    pub fn total_rightscale_cost(&self) -> Option<f64> {
        self.tenants
            .iter()
            .map(|t| t.rightscale.as_ref().map(|r| r.total_cost))
            .sum()
    }

    /// Total tuning runs executed fleet-wide — the cold-start cost the shared
    /// repository exists to amortize.
    pub fn total_tunings(&self) -> usize {
        self.tenants.iter().map(|t| t.stats.tunings).sum()
    }

    /// Learning-phase tunings skipped thanks to another tenant's entry.
    pub fn total_fleet_reuses(&self) -> u64 {
        self.tenants.iter().map(|t| t.stats.fleet_reuses).sum()
    }

    /// Cross-tenant repository hits fleet-wide.
    pub fn total_cross_tenant_hits(&self) -> u64 {
        self.tenants.iter().map(|t| t.cross_tenant_hits).sum()
    }

    /// Fleet-wide repository hit rate: total hits over total lookups, across
    /// every tenant's repository view (learning-phase lookups included).
    pub fn fleet_hit_rate(&self) -> f64 {
        let hits: u64 = self.tenants.iter().map(|t| t.stats.repository.hits).sum();
        let misses: u64 = self.tenants.iter().map(|t| t.stats.repository.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Mean epochs-after-join until the first `FleetReuse`, across tenants
    /// that ever reused a fleet entry (`None` when no tenant did). The
    /// headline newcomer-convergence number: a tenant joining a warm fleet
    /// reaches its first reuse in measurably fewer epochs than a cold start.
    pub fn mean_epochs_to_first_reuse(&self) -> Option<f64> {
        let epochs: Vec<f64> = self
            .tenants
            .iter()
            .filter_map(|t| t.first_fleet_reuse_epoch)
            .map(|e| e as f64)
            .collect();
        if epochs.is_empty() {
            None
        } else {
            Some(epochs.iter().sum::<f64>() / epochs.len() as f64)
        }
    }

    /// Tenants that reached at least one `FleetReuse`.
    pub fn tenants_with_fleet_reuse(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.first_fleet_reuse_epoch.is_some())
            .count()
    }

    /// Tenants that panicked mid-run and were retired by the transport.
    pub fn tenants_failed(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.failed_epoch.is_some())
            .count()
    }

    /// Mean reuse-phase adaptation time across tenants that adapted.
    pub fn mean_adaptation_secs(&self) -> f64 {
        let times: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.stats.mean_adaptation_secs())
            .filter(|&s| s > 0.0)
            .collect();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }

    /// Renders a plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(&mut out, format!("fleet scenario '{}'", self.scenario));
        push(
            &mut out,
            format!(
                "  tenants: {}  sharing: {:?}  epochs: {}  start: {}",
                self.tenants.len(),
                self.sharing,
                self.epochs,
                if self.warm_start { "warm" } else { "cold" }
            ),
        );
        // The barrier transport is the byte-stable default; only non-BSP
        // runs announce their transport and staleness telemetry.
        if self.transport.name != "bsp" {
            push(
                &mut out,
                format!(
                    "  transport                : {} (view staleness mean {:.2} / max {}; reuse staleness mean {:.2} / max {})",
                    self.transport.name,
                    self.transport.view_staleness.mean(),
                    self.transport.view_staleness.max(),
                    self.transport.reuse_staleness.mean(),
                    self.transport.reuse_staleness.max(),
                ),
            );
        }
        // The recovery section exists only on fault-injected (or
        // checkpoint-profiled) runs, so ordinary reports stay byte-stable.
        if let Some(faults) = &self.faults {
            push(
                &mut out,
                format!(
                    "  recovery                 : spec '{}', {} faults injected",
                    faults.spec, faults.injected
                ),
            );
            push(
                &mut out,
                format!(
                    "    crashes {} (replayed {} epochs)  drops {}  dups {}  reorders {}",
                    faults.tenants_crashed,
                    faults.replayed_epochs,
                    faults.reports_dropped,
                    faults.reports_duplicated,
                    faults.reports_reordered,
                ),
            );
            push(
                &mut out,
                format!(
                    "    committer restarts {}  shard losses {}  checkpoints {} ({} compactions, chain peak {})",
                    faults.committer_restarts,
                    faults.shard_losses,
                    faults.checkpoints,
                    faults.compactions,
                    faults.chain_peak,
                ),
            );
        }
        if self.tenants_failed() > 0 {
            push(
                &mut out,
                format!(
                    "  tenants failed           : {} (panicked and retired; survivors finished)",
                    self.tenants_failed()
                ),
            );
        }
        if let Some(mean) = self.mean_epochs_to_first_reuse() {
            push(
                &mut out,
                format!(
                    "  epochs to first reuse    : {:.1} (mean over {} tenants)",
                    mean,
                    self.tenants_with_fleet_reuse()
                ),
            );
        }
        push(
            &mut out,
            format!(
                "  aggregate SLO violation  : {:.2}%",
                self.aggregate_slo_violation() * 100.0
            ),
        );
        push(
            &mut out,
            format!("  total DejaVu cost        : ${:.2}", self.total_cost()),
        );
        if let Some(fixed) = self.total_fixed_max_cost() {
            push(
                &mut out,
                format!(
                    "  total FixedMax cost      : ${:.2} (savings {:.1}%)",
                    fixed,
                    (1.0 - self.total_cost() / fixed) * 100.0
                ),
            );
        }
        if let Some(rs) = self.total_rightscale_cost() {
            push(&mut out, format!("  total RightScale cost    : ${:.2}", rs));
        }
        push(
            &mut out,
            format!(
                "  fleet repository hit rate: {:.2}%",
                self.fleet_hit_rate() * 100.0
            ),
        );
        push(
            &mut out,
            format!(
                "  tuning runs (cold starts): {} ({} avoided via fleet reuse)",
                self.total_tunings(),
                self.total_fleet_reuses()
            ),
        );
        push(
            &mut out,
            format!(
                "  cross-tenant hits        : {}",
                self.total_cross_tenant_hits()
            ),
        );
        push(
            &mut out,
            format!(
                "  mean adaptation          : {:.1} s",
                self.mean_adaptation_secs()
            ),
        );
        if let Some(repo) = &self.shared_repo {
            push(
                &mut out,
                format!(
                    "  shared repo              : {} entries, {} anchors, {} shards",
                    repo.entries,
                    repo.anchors,
                    repo.shard_stats.len()
                ),
            );
            push(
                &mut out,
                format!(
                    "  shared repo activity     : {} inserts, {} evictions, {} cross-tenant hits",
                    repo.stats.insertions, repo.stats.evictions, repo.stats.cross_tenant_hits
                ),
            );
            let busiest = repo
                .shard_stats
                .iter()
                .map(|s| s.hits + s.misses + s.insertions)
                .max()
                .unwrap_or(0);
            push(&mut out, format!("  busiest shard ops        : {busiest}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report(sharing: SharingMode) -> FleetReport {
        FleetReport {
            scenario: "t".into(),
            sharing,
            epochs: 0,
            warm_start: false,
            tenants: Vec::new(),
            shared_repo: None,
            hit_rate_curve: Vec::new(),
            transport: TransportSummary::bsp(),
            faults: None,
        }
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = empty_report(SharingMode::Shared);
        assert_eq!(r.aggregate_slo_violation(), 0.0);
        assert_eq!(r.fleet_hit_rate(), 0.0);
        assert_eq!(r.mean_adaptation_secs(), 0.0);
        assert_eq!(r.total_cost(), 0.0);
        assert_eq!(r.total_fixed_max_cost(), Some(0.0));
        assert_eq!(r.mean_epochs_to_first_reuse(), None);
        assert_eq!(r.tenants_with_fleet_reuse(), 0);
        assert!(r.render().contains("tenants: 0"));
        assert!(r.render().contains("cold"));
    }

    #[test]
    fn only_non_bsp_reports_announce_their_transport() {
        let mut r = empty_report(SharingMode::Shared);
        assert!(!r.render().contains("transport"));
        r.transport.name = "async(staleness=2)".into();
        r.transport.view_staleness.record(1);
        let text = r.render();
        assert!(text.contains("transport"));
        assert!(text.contains("async(staleness=2)"));
    }

    #[test]
    fn fault_runs_render_a_recovery_section() {
        let mut r = empty_report(SharingMode::Shared);
        assert!(!r.render().contains("recovery"));
        r.faults = Some(FaultSummary {
            spec: "7:crash,drop".into(),
            injected: 3,
            tenants_crashed: 1,
            reports_dropped: 2,
            replayed_epochs: 4,
            checkpoints: 9,
            ..FaultSummary::default()
        });
        let text = r.render();
        assert!(text.contains("recovery"));
        assert!(text.contains("7:crash,drop"));
        assert!(text.contains("3 faults injected"));
        assert!(text.contains("replayed 4 epochs"));
    }

    #[test]
    fn failed_tenants_are_counted_and_rendered() {
        use dejavu_simcore::{SimTime, TimeSeries};
        let zero_run = RunResult {
            name: "t0".into(),
            controller: "c".into(),
            load: TimeSeries::new("load"),
            instance_count: TimeSeries::new("instances"),
            capacity_units: TimeSeries::new("capacity"),
            latency_ms: TimeSeries::new("latency"),
            qos_percent: TimeSeries::new("qos"),
            slo_violation_fraction: 0.0,
            total_cost: 0.0,
            reuse_cost: 0.0,
            adaptations: Vec::new(),
            settle_times_secs: Vec::new(),
            end: SimTime::default(),
        };
        let mut r = empty_report(SharingMode::Shared);
        assert_eq!(r.tenants_failed(), 0);
        r.tenants.push(TenantOutcome {
            id: 0,
            name: "t0".into(),
            namespace: 0,
            dejavu: zero_run,
            stats: DejaVuStats::default(),
            cross_tenant_hits: 0,
            joined_epoch: 0,
            active_epochs: 2,
            first_fleet_reuse_epoch: None,
            failed_epoch: Some(2),
            fixed_max: None,
            rightscale: None,
        });
        assert_eq!(r.tenants_failed(), 1);
        assert!(r.render().contains("tenants failed           : 1"));
    }
}
