//! The SPECweb2009-like multi-tier web service model.
//!
//! The paper's scale-up experiments use SPECweb2009's *support* workload
//! (read-only, I/O intensive, QoS = fraction of downloads meeting a 0.99 Mbps
//! rate, compliance requires ≥ 95%), serving with 5 front-end and 5 back-end
//! instances whose type is switched between large and extra-large.

use crate::perf::{PerfSample, QueueingModel};
use crate::service::{EvalContext, ServiceModel};
use crate::slo::Slo;
use dejavu_traces::{RequestMix, ServiceKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three SPECweb2009 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecWebWorkload {
    /// Large-file downloads; read-only and I/O intensive (used for scale-up).
    Support,
    /// Online banking; encrypted, CPU-heavier, read-mostly.
    Banking,
    /// E-commerce; mixed browsing and ordering.
    Ecommerce,
}

impl SpecWebWorkload {
    /// The request mix the workload's client emulator generates.
    pub fn mix(self) -> RequestMix {
        match self {
            SpecWebWorkload::Support => RequestMix::read_only(),
            SpecWebWorkload::Banking => RequestMix::new(0.9),
            SpecWebWorkload::Ecommerce => RequestMix::new(0.8),
        }
    }

    /// Relative demand the workload puts on the serving capacity (support is
    /// dominated by static I/O and is the cheapest per request).
    pub fn demand_factor(self) -> f64 {
        match self {
            SpecWebWorkload::Support => 1.0,
            SpecWebWorkload::Banking => 1.15,
            SpecWebWorkload::Ecommerce => 1.1,
        }
    }
}

impl fmt::Display for SpecWebWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecWebWorkload::Support => "support",
            SpecWebWorkload::Banking => "banking",
            SpecWebWorkload::Ecommerce => "ecommerce",
        };
        f.write_str(s)
    }
}

/// The SPECweb2009-like service.
///
/// # Example
///
/// ```
/// use dejavu_services::{ServiceModel, SpecWebService, SpecWebWorkload};
/// use dejavu_services::service::EvalContext;
/// use dejavu_simcore::SimTime;
///
/// let svc = SpecWebService::new(SpecWebWorkload::Support);
/// // 5 extra-large instances (10 capacity units) keep QoS at 100% at peak load.
/// let s = svc.evaluate(0.95, &EvalContext::steady(SimTime::ZERO, 10.0));
/// assert!(svc.slo().is_met(&s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecWebService {
    workload: SpecWebWorkload,
    queueing: QueueingModel,
    qos_target: f64,
}

impl SpecWebService {
    /// Creates the service for the given SPECweb workload with the standard
    /// 95% QoS compliance target.
    pub fn new(workload: SpecWebWorkload) -> Self {
        SpecWebService {
            workload,
            queueing: QueueingModel {
                base_latency_ms: 25.0,
                ..QueueingModel::default()
            },
            qos_target: 95.0,
        }
    }

    /// The SPECweb workload being served.
    pub fn workload(&self) -> SpecWebWorkload {
        self.workload
    }
}

impl ServiceModel for SpecWebService {
    fn kind(&self) -> ServiceKind {
        ServiceKind::SpecWeb
    }

    fn default_mix(&self) -> RequestMix {
        self.workload.mix()
    }

    fn slo(&self) -> Slo {
        Slo::QosPercent(self.qos_target)
    }

    fn evaluate(&self, intensity: f64, ctx: &EvalContext) -> PerfSample {
        self.queueing.sample(
            intensity * self.workload.demand_factor(),
            ctx.capacity_units,
            1.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavu_simcore::SimTime;

    #[test]
    fn scale_up_calibration() {
        let svc = SpecWebService::new(SpecWebWorkload::Support);
        // 5 large instances (5 units) hold QoS up to moderate load...
        let moderate = svc.evaluate(0.5, &EvalContext::steady(SimTime::ZERO, 5.0));
        assert!(svc.slo().is_met(&moderate), "qos {}", moderate.qos_percent);
        // ...but not at the trace peak, which needs the extra-large type.
        let peak_l = svc.evaluate(0.95, &EvalContext::steady(SimTime::ZERO, 5.0));
        assert!(!svc.slo().is_met(&peak_l));
        let peak_xl = svc.evaluate(0.95, &EvalContext::steady(SimTime::ZERO, 10.0));
        assert!(svc.slo().is_met(&peak_xl));
    }

    #[test]
    fn workload_mixes() {
        assert_eq!(SpecWebWorkload::Support.mix().read_fraction(), 1.0);
        assert!(SpecWebWorkload::Banking.mix().read_fraction() < 1.0);
        assert!(
            SpecWebWorkload::Banking.demand_factor() > SpecWebWorkload::Support.demand_factor()
        );
    }

    #[test]
    fn heavier_workloads_need_more_capacity() {
        let support = SpecWebService::new(SpecWebWorkload::Support);
        let banking = SpecWebService::new(SpecWebWorkload::Banking);
        assert!(banking.required_capacity(0.8) >= support.required_capacity(0.8));
    }

    #[test]
    fn metadata() {
        let svc = SpecWebService::new(SpecWebWorkload::Support);
        assert_eq!(svc.kind(), ServiceKind::SpecWeb);
        assert_eq!(svc.workload(), SpecWebWorkload::Support);
        assert_eq!(svc.slo(), Slo::QosPercent(95.0));
        assert_eq!(SpecWebWorkload::Ecommerce.to_string(), "ecommerce");
    }
}
